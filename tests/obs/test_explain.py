"""EXPLAIN reports and the stats facades they read: the report's numbers
can never disagree with the StoreStats movement of the explained query,
``reset_stats`` zeroes every counter, and tracing never changes results."""

import pytest

from repro import mpisim
from repro.datasets import random_envelopes
from repro.geometry import Envelope, Polygon
from repro.obs import ExplainReport, DistributedExplainReport, Tracer
from repro.obs.trace import NULL_TRACER
from repro.pfs import LustreFilesystem
from repro.store import (
    DistributedStoreServer,
    SpatialDataStore,
    StoreAppender,
    StoreStats,
    bulk_load,
    sharded_bulk_load,
)

EXTENT = Envelope(0.0, 0.0, 100.0, 100.0)


def make_geoms(count=80, seed=13):
    return [
        Polygon.from_envelope(env, userdata=i)
        for i, env in enumerate(
            random_envelopes(count, extent=EXTENT, max_size_fraction=0.1, seed=seed)
        )
    ]


@pytest.fixture
def fs(tmp_path):
    return LustreFilesystem(tmp_path / "pfs")


@pytest.fixture
def single_store(fs):
    bulk_load(fs, "data", make_geoms(), num_partitions=16, page_size=512)
    return SpatialDataStore.open(fs, "data", cache_pages=16)


WINDOW = Envelope(20.0, 20.0, 60.0, 60.0)


class TestStoreExplain:
    def test_report_matches_stats_movement(self, single_store):
        """explain() runs the query for real: its stats_delta IS the store
        stats movement, and the refine section agrees with it by
        construction (decode spans measure the same counters)."""
        before = single_store.stats.as_dict()
        report = single_store.explain(WINDOW)
        after = single_store.stats.as_dict()
        assert isinstance(report, ExplainReport)
        for key, value in report.stats_delta.items():
            assert value == after[key] - before[key], key
        assert report.refine["records_decoded"] == report.stats_delta["records_decoded"]
        assert report.stats_delta["read_requests"] == sum(
            1 for _ in report.schedule
        )
        assert report.stats_delta["queries"] == 1

    def test_report_agrees_with_real_query(self, single_store):
        hits = single_store.range_query(WINDOW)
        report = single_store.explain(WINDOW)
        assert report.num_hits == len(hits)
        assert report.query == {
            "kind": "range_query", "window": str(WINDOW), "exact": True,
        }

    def test_plan_section_prunes(self, single_store):
        small = Envelope(1.0, 1.0, 9.0, 9.0)
        report = single_store.explain(small)
        plan = report.plan
        assert plan["partitions_total"] == 16
        assert 0 < plan["partitions_visited"] < 16
        assert plan["partitions_pruned"] == 16 - plan["partitions_visited"]
        assert plan["touched_pages"] >= len(
            {p for run in report.schedule for p in run.get("pages", [])}
        )

    def test_warm_explain_reports_cached_pages(self, single_store):
        single_store.range_query(WINDOW)  # warm every page the window needs
        report = single_store.explain(WINDOW)
        assert report.schedule == []
        assert report.cache["misses"] == 0
        assert report.cache["hits"] > 0
        assert "already cached" in report.render()

    def test_schedule_section_carries_readahead_stop(self, fs):
        bulk_load(fs, "ra", make_geoms(), num_partitions=4, page_size=512)
        store = SpatialDataStore.open(fs, "ra", cache_pages=16, prefetch_pages=2)
        report = store.explain(WINDOW)
        stops = {run["prefetch_stop"] for run in report.schedule}
        assert stops <= {
            "disabled", "empty", "budget", "container_end",
            "cached_page", "stripe_boundary",
        }
        assert stops - {"disabled"}, "prefetching runs should name a stop reason"
        store.close()

    def test_render_and_dict_shape(self, single_store):
        report = single_store.explain(WINDOW)
        text = report.render()
        assert text.startswith("EXPLAIN range_query")
        assert "plan:" in text and "refine:" in text and "stats delta:" in text
        d = report.as_dict()
        assert set(d) == {
            "query", "plan", "schedule", "refine", "cache",
            "stats_delta", "num_hits",
        }

    def test_explain_restores_disabled_tracer(self, single_store):
        assert single_store.tracer is NULL_TRACER
        single_store.explain(WINDOW)
        assert single_store.tracer is NULL_TRACER
        # and repeated explains keep working (fresh recording tracer each time)
        first = single_store.explain(WINDOW).num_hits
        second = single_store.explain(WINDOW).num_hits
        assert first == second


class TestStatsFacades:
    def test_reset_stats_zeroes_everything(self, single_store):
        single_store.range_query(WINDOW)
        assert single_store.stats.queries > 0
        single_store.reset_stats()
        flat = single_store.stats.as_dict()
        assert all(v == 0 for v in flat.values())
        # the registry counters behind the facade were reset too — but the
        # cumulative query-heat map (a rebalancer input, not a query stat)
        # deliberately survives
        snap = single_store.metrics.snapshot()
        assert all(
            v == 0 for k, v in snap["counters"].items()
            if k.startswith(("store.", "cache."))
            and not k.startswith("store.partition_heat")
        )
        assert any(
            v > 0 for k, v in snap["counters"].items()
            if k.startswith("store.partition_heat")
        )
        # and the facade still counts afterwards
        single_store.range_query(WINDOW)
        assert single_store.stats.queries == 1

    def test_storestats_facade_arithmetic(self):
        stats = StoreStats()
        stats.pages_read += 3
        stats.io_seconds += 0.25
        stats.cache.hits += 2
        assert stats.pages_read == 3
        assert stats.io_seconds == pytest.approx(0.25)
        assert stats.as_dict()["cache_hits"] == 2
        stats.reset()
        assert stats.pages_read == 0 and stats.cache.hits == 0

    def test_traced_results_bit_identical(self, fs):
        bulk_load(fs, "tr", make_geoms(), num_partitions=16, page_size=512)
        plain = SpatialDataStore.open(fs, "tr", cache_pages=16)
        traced = SpatialDataStore.open(fs, "tr", cache_pages=16, tracer=Tracer())
        queries = [
            (i, env) for i, env in enumerate(
                random_envelopes(10, extent=EXTENT, max_size_fraction=0.2, seed=4)
            )
        ]
        a = plain.range_query_batch(queries)
        b = traced.range_query_batch(queries)
        assert [[h.record_id for h in hits] for hits in a] == [
            [h.record_id for h in hits] for hits in b
        ]
        assert plain.stats.as_dict() == traced.stats.as_dict()
        assert traced.tracer.spans and not plain.tracer.spans
        plain.close()
        traced.close()


class TestDistributedExplain:
    @pytest.mark.parametrize("nprocs", (1, 2, 4))
    def test_explain_batch(self, fs, nprocs):
        geoms = make_geoms(100, seed=31)
        sharded_bulk_load(fs, "data", geoms, num_shards=max(2, nprocs),
                          num_partitions=16, page_size=512)
        queries = [
            (i, env) for i, env in enumerate(
                random_envelopes(8, extent=EXTENT, max_size_fraction=0.2, seed=9)
            )
        ]

        def prog(comm):
            with DistributedStoreServer.open(comm, fs, "data", cache_pages=32) as server:
                hits = server.range_query_batch(queries if comm.rank == 0 else None)
                report = server.explain_batch(queries if comm.rank == 0 else None)
            return hits, report

        values = mpisim.run_spmd(prog, nprocs).values
        hits, report = values[0]
        assert isinstance(report, DistributedExplainReport)
        # non-root ranks participate but receive no report
        assert all(v[1] is None for v in values[1:])
        assert report.num_hits == len(hits)
        assert report.routing["num_ranks"] == nprocs
        assert report.routing["shards_visited"] + report.routing["shards_pruned"] \
            == report.routing["num_shards"]
        assert sum(info["entries"] for info in report.shards.values()) > 0
        text = report.render()
        assert text.startswith("EXPLAIN distributed batch")
        assert f"{len(queries)} queries" in text
        # the gathered trace is connected under one id
        ids = {s["span_id"] for s in report.spans}
        assert all(
            s["parent_id"] in ids
            for s in report.spans
            if s["parent_id"] is not None
        )
        assert len({s["trace_id"] for s in report.spans}) == 1


class TestMutableTracing:
    def test_append_and_compact_spans(self, fs):
        bulk_load(fs, "mut", make_geoms(40), num_partitions=4, page_size=512)
        tracer = Tracer()
        appender = StoreAppender(fs, "mut", tracer=tracer)
        result = appender.append(make_geoms(10, seed=77))
        comp = appender.compact()
        names = [s.name for s in tracer.spans]
        assert names == ["append", "compact"]
        app_span, comp_span = tracer.spans
        assert app_span.attrs["gen_id"] == result.gen_id
        assert app_span.attrs["records"] == result.num_records == 10
        assert comp_span.attrs["merged_generations"] == comp.merged_generations
        assert comp_span.attrs["records"] == comp.num_records

    def test_untraced_appender_records_nothing(self, fs):
        bulk_load(fs, "mut2", make_geoms(40), num_partitions=4, page_size=512)
        appender = StoreAppender(fs, "mut2")
        assert appender.tracer is NULL_TRACER
        appender.append(make_geoms(5, seed=78))
        appender.compact()
