"""Serving-correctness battery for the sharded store.

The invariant under test: for any dataset and query workload, the
record-id-de-duplicated results of distributed serving equal the
single-store results equal a brute-force scan — ids *and* geometries —
for every rank count, including ranks without shards, empty shards and
replicas spanning shard boundaries.
"""

import random

import pytest

from repro import mpisim
from repro.core import (
    GridPartitionConfig,
    RangeQuery,
    SpatialJoin,
    join_distributed_with_store,
    join_with_store,
)
from repro.datasets import random_envelopes
from repro.geometry import Envelope, LineString, Point, Polygon, predicates
from repro.pfs import LustreFilesystem
from repro.store import (
    DistributedStoreServer,
    ShardedStoreWriter,
    SpatialDataStore,
    bulk_load,
    sharded_bulk_load,
    shards_path,
)

NPROCS = (1, 2, 4, 8)


def make_fs(tmp_path):
    return LustreFilesystem(tmp_path / "pfs")


def random_geometries(count, seed, extent=Envelope(0.0, 0.0, 100.0, 100.0),
                      max_size_fraction=0.08):
    """A mixed bag of polygons, linestrings and points with integer userdata."""
    rng = random.Random(seed)
    out = []
    for i, env in enumerate(
        random_envelopes(count, extent=extent, max_size_fraction=max_size_fraction,
                         seed=seed)
    ):
        kind = rng.random()
        if kind < 0.6:
            out.append(Polygon.from_envelope(env, userdata=i))
        elif kind < 0.85:
            line = LineString(
                [(env.minx, env.miny), (env.maxx, env.maxy)], userdata=i
            )
            out.append(line)
        else:
            out.append(Point(env.minx, env.miny, userdata=i))
    return out


def brute_force_ids(geoms, window):
    """Ground truth: ids of geometries intersecting the window polygon."""
    wpoly = Polygon.from_envelope(window)
    return sorted(
        i for i, g in enumerate(geoms) if predicates.intersects(wpoly, g)
    )


def serve_distributed(fs, name, queries, nprocs, cache_pages=32):
    """Run one distributed batch; returns rank 0's de-duplicated hits."""

    def prog(comm):
        with DistributedStoreServer.open(comm, fs, name, cache_pages=cache_pages) as server:
            return server.range_query_batch(queries if comm.rank == 0 else None)

    return mpisim.run_spmd(prog, nprocs).values[0]


def hits_by_query(hits):
    out = {}
    for h in hits:
        out.setdefault(h.query_id, []).append(h)
    return out


class TestShardedEqualsSingleEqualsBruteForce:
    """The core property, over randomized datasets and workloads."""

    @pytest.mark.parametrize("seed", [3, 17, 92])
    @pytest.mark.parametrize("nprocs", NPROCS)
    def test_randomized_workload(self, tmp_path, seed, nprocs):
        fs = make_fs(tmp_path)
        geoms = random_geometries(120, seed)
        sharded_bulk_load(fs, "data", geoms, num_shards=4, num_partitions=16,
                          page_size=512)
        bulk_load(fs, "data_single", geoms, num_partitions=16, page_size=512)
        store = SpatialDataStore.open(fs, "data_single")

        queries = [
            (qid, env)
            for qid, env in enumerate(
                random_envelopes(15, extent=Envelope(0.0, 0.0, 100.0, 100.0),
                                 max_size_fraction=0.35, seed=seed + 1)
            )
        ]

        hits = serve_distributed(fs, "data", queries, nprocs)
        per_query = hits_by_query(hits)
        for qid, env in queries:
            got = per_query.get(qid, [])
            got_ids = sorted(h.record_id for h in got)
            single = store.range_query(env)
            assert got_ids == [h.record_id for h in single]
            assert got_ids == brute_force_ids(geoms, env)
            # geometries, not just ids: replicas must decode identically
            got_wkt = {h.record_id: h.geometry.wkt() for h in got}
            for h in single:
                assert got_wkt[h.record_id] == h.geometry.wkt()
            # no duplicate record ever survives the gather-side de-dup
            assert len(got_ids) == len(set(got_ids))

    @pytest.mark.parametrize("nprocs", NPROCS)
    def test_full_extent_window_returns_every_record(self, tmp_path, nprocs):
        fs = make_fs(tmp_path)
        geoms = random_geometries(80, seed=7)
        result = sharded_bulk_load(fs, "data", geoms, num_shards=4,
                                   num_partitions=16, page_size=512)
        window = result.manifest.extent
        hits = serve_distributed(fs, "data", [("all", window)], nprocs)
        assert sorted(h.record_id for h in hits) == list(range(len(geoms)))

    @pytest.mark.parametrize("nprocs", NPROCS)
    def test_empty_window_and_miss_window(self, tmp_path, nprocs):
        fs = make_fs(tmp_path)
        geoms = random_geometries(40, seed=5)
        sharded_bulk_load(fs, "data", geoms, num_shards=2, num_partitions=8,
                          page_size=512)
        far = Envelope(1e6, 1e6, 1e6 + 1, 1e6 + 1)
        hits = serve_distributed(fs, "data", [(0, far)], nprocs)
        assert hits == []


class TestReplicaDeduplication:
    def test_cross_shard_replicas_reported_once(self, tmp_path):
        fs = make_fs(tmp_path)
        # wide horizontal slabs overlap every grid column -> replicas in
        # every shard; small squares stay local
        slabs = [
            Polygon.from_envelope(Envelope(1.0, 10.0 * i + 1.0, 99.0, 10.0 * i + 4.0),
                                  userdata=i)
            for i in range(5)
        ]
        squares = [
            Polygon.from_envelope(env, userdata=100 + i)
            for i, env in enumerate(
                random_envelopes(40, extent=Envelope(0.0, 0.0, 100.0, 100.0),
                                 max_size_fraction=0.03, seed=21)
            )
        ]
        geoms = slabs + squares
        result = sharded_bulk_load(fs, "data", geoms, num_shards=4,
                                   num_partitions=16, page_size=256)

        # precondition: at least one record is really replicated across shards
        shard_record_sets = []
        for shard in result.manifest.shards:
            store = SpatialDataStore.open(fs, shard.store)
            shard_record_sets.append({rid for rid, _ in store.scan()})
            store.close()
        replicated = set()
        for i, a in enumerate(shard_record_sets):
            for b in shard_record_sets[i + 1:]:
                replicated |= a & b
        assert replicated, "test dataset must produce cross-shard replicas"

        window = Envelope(0.0, 0.0, 100.0, 100.0)
        for nprocs in NPROCS:
            hits = serve_distributed(fs, "data", [(0, window)], nprocs)
            ids = [h.record_id for h in hits]
            assert len(ids) == len(set(ids))
            assert sorted(ids) == list(range(len(geoms)))

    def test_total_replicas_preserved_by_sharding(self, tmp_path):
        fs = make_fs(tmp_path)
        geoms = random_geometries(100, seed=13)
        sharded = sharded_bulk_load(fs, "data", geoms, num_shards=4,
                                    num_partitions=16, page_size=512)
        single = bulk_load(fs, "data_single", geoms, num_partitions=16,
                           page_size=512)
        assert sharded.num_replicas == single.num_replicas
        assert sharded.num_records == single.num_records
        assert sum(s.num_replicas for s in sharded.manifest.shards) == single.num_replicas


class TestShardEdgeCases:
    def test_more_shards_than_partitions_creates_empty_shards(self, tmp_path):
        fs = make_fs(tmp_path)
        # all data in one corner of a coarse grid: few non-empty partitions
        geoms = [
            Polygon.from_envelope(Envelope(0.1 + 0.01 * i, 0.1, 0.2 + 0.01 * i, 0.2),
                                  userdata=i)
            for i in range(12)
        ]
        result = ShardedStoreWriter(fs, "tiny", num_shards=6, num_partitions=4,
                                    page_size=256).load(geoms)
        empty = [s for s in result.manifest.shards if s.num_records == 0]
        assert empty, "expected at least one empty shard"
        # every shard opens as a valid (possibly empty) store
        for shard in result.manifest.shards:
            store = SpatialDataStore.open(fs, shard.store)
            assert len(store) == shard.num_records
            store.close()
        for nprocs in (1, 4, 8):
            hits = serve_distributed(fs, "tiny", [(0, Envelope(0.0, 0.0, 1.0, 1.0))],
                                     nprocs)
            assert sorted(h.record_id for h in hits) == list(range(12))

    def test_more_ranks_than_partitions(self, tmp_path):
        fs = make_fs(tmp_path)
        geoms = random_geometries(30, seed=2)
        sharded_bulk_load(fs, "data", geoms, num_shards=2, num_partitions=2,
                          page_size=512)
        window = Envelope(0.0, 0.0, 100.0, 100.0)
        hits = serve_distributed(fs, "data", [(0, window)], nprocs=8)
        assert sorted(h.record_id for h in hits) == brute_force_ids(geoms, window)

    def test_single_shard_degenerates_to_single_store(self, tmp_path):
        fs = make_fs(tmp_path)
        geoms = random_geometries(50, seed=9)
        sharded_bulk_load(fs, "data", geoms, num_shards=1, num_partitions=16,
                          page_size=512)
        bulk_load(fs, "data_single", geoms, num_partitions=16, page_size=512)
        store = SpatialDataStore.open(fs, "data_single")
        window = Envelope(10.0, 10.0, 70.0, 70.0)
        hits = serve_distributed(fs, "data", [(0, window)], nprocs=2)
        assert [h.record_id for h in hits] == [h.record_id for h in store.range_query(window)]

    def test_missing_shards_manifest_raises(self, tmp_path):
        fs = make_fs(tmp_path)

        def prog(comm):
            return DistributedStoreServer.open(comm, fs, "nope")

        with pytest.raises(FileNotFoundError):
            mpisim.run_spmd(prog, 2)


class TestDistributedJoin:
    @pytest.mark.parametrize("nprocs", NPROCS)
    def test_join_matches_single_store(self, tmp_path, nprocs):
        fs = make_fs(tmp_path)
        geoms = random_geometries(90, seed=31)
        sharded_bulk_load(fs, "data", geoms, num_shards=4, num_partitions=16,
                          page_size=512)
        bulk_load(fs, "data_single", geoms, num_partitions=16, page_size=512)
        store = SpatialDataStore.open(fs, "data_single")
        probes = [
            Polygon.from_envelope(env, userdata=f"probe-{i}")
            for i, env in enumerate(
                random_envelopes(12, extent=Envelope(0.0, 0.0, 100.0, 100.0),
                                 max_size_fraction=0.25, seed=32)
            )
        ]
        expected = sorted(
            (p.userdata, h.record_id) for p, h in store.join(probes)
        )

        def prog(comm):
            with DistributedStoreServer.open(comm, fs, "data") as server:
                return server.join(probes if comm.rank == 0 else None)

        pairs = mpisim.run_spmd(prog, nprocs).values[0]
        got = sorted((p.userdata, h.record_id) for p, h in pairs)
        assert got == expected
        assert len(got) == len(set(got))


class TestStoreBackedPipelineInput:
    @pytest.mark.parametrize("nprocs", NPROCS)
    def test_local_records_partition_the_dataset(self, tmp_path, nprocs):
        fs = make_fs(tmp_path)
        geoms = random_geometries(70, seed=41)
        sharded_bulk_load(fs, "data", geoms, num_shards=4, num_partitions=16,
                          page_size=512)

        def prog(comm):
            with DistributedStoreServer.open(comm, fs, "data") as server:
                return sorted(rid for rid, _ in server.local_records())

        values = mpisim.run_spmd(prog, nprocs).values
        all_ids = [rid for chunk in values for rid in chunk]
        # exactly once across ranks: a disjoint cover of the logical dataset
        assert sorted(all_ids) == list(range(len(geoms)))

    def test_execute_distributed_from_store_matches_serial(self, tmp_path):
        fs = make_fs(tmp_path)
        geoms = random_geometries(60, seed=55)
        sharded_bulk_load(fs, "data", geoms, num_shards=4, num_partitions=16,
                          page_size=512)
        bulk_load(fs, "data_single", geoms, num_partitions=16, page_size=512)
        store = SpatialDataStore.open(fs, "data_single")
        queries = [
            (qid, env)
            for qid, env in enumerate(
                random_envelopes(10, extent=Envelope(0.0, 0.0, 100.0, 100.0),
                                 max_size_fraction=0.3, seed=56)
            )
        ]
        rq = RangeQuery(fs, queries)
        expected = sorted(
            (m.query_id, m.geometry.userdata) for m in rq.execute_from_store(store)
        )

        def prog(comm):
            with DistributedStoreServer.open(comm, fs, "data") as server:
                return rq.execute_distributed_from_store(comm, server, broadcast=True)

        res = mpisim.run_spmd(prog, 4)
        for rank_matches in res.values:  # broadcast: all ranks see the result
            got = sorted((m.query_id, m.geometry.userdata) for m in rank_matches)
            assert got == expected


class TestCoreWiring:
    """The advertised core entry points over the sharded store."""

    @pytest.mark.parametrize("nprocs", (2, 4))
    def test_run_from_store_matches_classic_pipeline(self, tmp_path, nprocs):
        fs = make_fs(tmp_path)
        left = [
            Polygon.from_envelope(env, userdata=i)
            for i, env in enumerate(
                random_envelopes(60, extent=Envelope(0.0, 0.0, 100.0, 100.0),
                                 max_size_fraction=0.12, seed=81)
            )
        ]
        right = [
            Polygon.from_envelope(env, userdata=f"r{i}")
            for i, env in enumerate(
                random_envelopes(40, extent=Envelope(0.0, 0.0, 100.0, 100.0),
                                 max_size_fraction=0.12, seed=82)
            )
        ]
        fs.create_file("datasets/left.wkt", ("\n".join(g.wkt() for g in left) + "\n").encode())
        fs.create_file("datasets/right.wkt", ("\n".join(g.wkt() for g in right) + "\n").encode())
        sharded_bulk_load(fs, "left", left, num_shards=4, num_partitions=16,
                          page_size=512)
        cfg = GridPartitionConfig(num_cells=16)

        def classic(comm):
            return SpatialJoin(fs, grid_config=cfg).run_gathered(
                comm, "datasets/left.wkt", "datasets/right.wkt"
            )

        expected = mpisim.run_spmd(classic, nprocs).values[0]
        expected_keys = sorted((p.left.wkt(), p.right.wkt()) for p in expected)
        assert expected_keys, "test join must produce pairs"

        def store_backed(comm):
            join = SpatialJoin(fs, grid_config=cfg)
            with DistributedStoreServer.open(comm, fs, "left") as server:
                local = join.run_from_store(comm, server, "datasets/right.wkt")
            gathered = comm.gather(local.local_results, root=0)
            if comm.rank != 0:
                return None
            return [p for chunk in gathered for p in chunk]

        got = mpisim.run_spmd(store_backed, nprocs).values[0]
        assert sorted((p.left.wkt(), p.right.wkt()) for p in got) == expected_keys

    @pytest.mark.parametrize("nprocs", (1, 2, 4))
    def test_join_distributed_with_store_matches_single(self, tmp_path, nprocs):
        fs = make_fs(tmp_path)
        geoms = random_geometries(80, seed=91)
        sharded_bulk_load(fs, "data", geoms, num_shards=4, num_partitions=16,
                          page_size=512)
        bulk_load(fs, "data_single", geoms, num_partitions=16, page_size=512)
        store = SpatialDataStore.open(fs, "data_single")
        probes = [
            Polygon.from_envelope(env, userdata=f"p{i}")
            for i, env in enumerate(
                random_envelopes(10, extent=Envelope(0.0, 0.0, 100.0, 100.0),
                                 max_size_fraction=0.25, seed=92)
            )
        ]
        expected = sorted(
            (p.left.userdata, p.right.userdata) for p in join_with_store(store, probes)
        )

        def prog(comm):
            with DistributedStoreServer.open(comm, fs, "data") as server:
                pairs = join_distributed_with_store(
                    comm, server, probes if comm.rank == 0 else None, broadcast=True
                )
                method_pairs = SpatialJoin(fs).join_store_distributed(
                    comm, server, probes if comm.rank == 0 else None
                )
            return pairs, method_pairs

        res = mpisim.run_spmd(prog, nprocs)
        for pairs, _ in res.values:  # broadcast: identical on every rank
            assert sorted((p.left.userdata, p.right.userdata) for p in pairs) == expected
        method_pairs = res.values[0][1]
        assert sorted((p.left.userdata, p.right.userdata) for p in method_pairs) == expected

    def test_local_geometries_matches_local_records(self, tmp_path):
        fs = make_fs(tmp_path)
        geoms = random_geometries(50, seed=95)
        sharded_bulk_load(fs, "data", geoms, num_shards=4, num_partitions=16,
                          page_size=512)

        def prog(comm):
            with DistributedStoreServer.open(comm, fs, "data") as server:
                records = server.local_records()
                # fresh server so the two reads see identical cache state
                return [g.userdata for _, g in records]

        values = mpisim.run_spmd(prog, 4).values
        all_ids = sorted(uid for chunk in values for uid in chunk)
        assert all_ids == list(range(len(geoms)))

    def test_buggy_join_predicate_is_not_blamed_on_a_shard(self, tmp_path):
        fs = make_fs(tmp_path)
        geoms = random_geometries(40, seed=97)
        sharded_bulk_load(fs, "data", geoms, num_shards=2, num_partitions=8,
                          page_size=512)
        probes = [Polygon.from_envelope(Envelope(0.0, 0.0, 100.0, 100.0))]

        def bad_predicate(probe, geom):
            raise ValueError("user predicate bug")

        def prog(comm):
            with DistributedStoreServer.open(comm, fs, "data") as server:
                return server.join(probes if comm.rank == 0 else None, bad_predicate)

        from repro.store import StoreError

        with pytest.raises(ValueError, match="user predicate bug") as excinfo:
            mpisim.run_spmd(prog, 2)
        assert not isinstance(excinfo.value, StoreError)

    def test_corrupted_shards_json_is_a_store_error(self, tmp_path):
        from repro.store import StoreError

        fs = make_fs(tmp_path)
        geoms = random_geometries(20, seed=99)
        sharded_bulk_load(fs, "data", geoms, num_shards=2, num_partitions=4,
                          page_size=512)
        with fs.open(shards_path("data")) as fh:
            raw = fh.pread(0, fh.size)
        fs.create_file(shards_path("data"), raw[: len(raw) // 2])

        def prog(comm):
            return DistributedStoreServer.open(comm, fs, "data")

        with pytest.raises(StoreError, match="shards manifest"):
            mpisim.run_spmd(prog, 2)


class TestServingPhases:
    def test_phase_breakdown_is_populated(self, tmp_path):
        fs = make_fs(tmp_path)
        geoms = random_geometries(80, seed=61)
        sharded_bulk_load(fs, "data", geoms, num_shards=4, num_partitions=16,
                          page_size=512)
        queries = [
            (qid, env)
            for qid, env in enumerate(
                random_envelopes(8, extent=Envelope(0.0, 0.0, 100.0, 100.0),
                                 max_size_fraction=0.3, seed=62)
            )
        ]

        def prog(comm):
            with DistributedStoreServer.open(comm, fs, "data") as server:
                server.range_query_batch(queries if comm.rank == 0 else None)
                return server.phase_breakdown()

        res = mpisim.run_spmd(prog, 4)
        phases = res.values[0]
        assert set(phases) == {"route", "scatter", "local_query", "gather"}
        assert all(v >= 0.0 for v in phases.values())
        assert phases["local_query"] > 0.0  # pages were actually served
        # every rank reports the same reduced breakdown (it is a collective)
        assert all(v == phases for v in res.values)

    def test_shards_json_written(self, tmp_path):
        fs = make_fs(tmp_path)
        geoms = random_geometries(20, seed=71)
        sharded_bulk_load(fs, "data", geoms, num_shards=2, num_partitions=4,
                          page_size=512)
        assert fs.exists(shards_path("data"))
