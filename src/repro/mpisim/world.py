"""Shared state backing a simulated MPI world.

A :class:`World` owns the per-rank mailboxes, the collective-exchange engine,
the per-rank virtual clocks and the abort machinery.  Rank-bound
:class:`~repro.mpisim.comm.Communicator` objects are thin views over it.
"""

from __future__ import annotations

import pickle
import threading
from typing import Any, Dict, List, Optional

from .clock import CommCostModel, VirtualClock
from .errors import CollectiveMismatchError, MPIAbortError

__all__ = ["World", "payload_nbytes"]


def _thread_rank() -> Optional[int]:
    """Rank of the calling simulated thread (None off the SPMD threads)."""
    name = threading.current_thread().name
    if not name.startswith("mpisim-rank-"):
        return None
    try:
        return int(name[len("mpisim-rank-"):])
    except ValueError:
        return None


def payload_nbytes(obj: Any) -> int:
    """Approximate wire size of a Python payload in bytes.

    Buffer-like objects report their true size; other objects fall back to the
    pickled length, mirroring mpi4py's object protocol.
    """
    if obj is None:
        return 0
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode("utf-8", errors="replace"))
    nbytes = getattr(obj, "nbytes", None)
    if isinstance(nbytes, (int, float)):
        return int(nbytes)
    if isinstance(obj, (int, float, bool)):
        return 8
    if isinstance(obj, (list, tuple)) and len(obj) <= 64:
        return sum(payload_nbytes(x) for x in obj)
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 64


class _Message:
    __slots__ = ("source", "tag", "payload", "arrival_time", "nbytes")

    def __init__(self, source: int, tag: int, payload: Any, arrival_time: float, nbytes: int) -> None:
        self.source = source
        self.tag = tag
        self.payload = payload
        self.arrival_time = arrival_time
        self.nbytes = nbytes


class _Mailbox:
    """Per-rank incoming message queue with tag/source matching."""

    def __init__(self, world: "World") -> None:
        self._world = world
        self._messages: List[_Message] = []
        self._cond = threading.Condition()

    def deliver(self, msg: _Message) -> None:
        with self._cond:
            self._messages.append(msg)
            self._cond.notify_all()

    def wake(self) -> None:
        with self._cond:
            self._cond.notify_all()

    def _match(self, source: int, tag: int) -> Optional[int]:
        for i, msg in enumerate(self._messages):
            if (source == -1 or msg.source == source) and (tag == -1 or msg.tag == tag):
                return i
        return None

    def take(self, source: int, tag: int) -> _Message:
        """Block until a matching message arrives, then remove and return it."""
        with self._cond:
            self._world.note_waiting("recv")
            try:
                while True:
                    self._world.check_abort()
                    idx = self._match(source, tag)
                    if idx is not None:
                        return self._messages.pop(idx)
                    self._cond.wait(timeout=0.2)
            finally:
                self._world.note_running()

    def peek(self, source: int, tag: int) -> _Message:
        """Block until a matching message arrives and return it without removing."""
        with self._cond:
            self._world.note_waiting("recv")
            try:
                while True:
                    self._world.check_abort()
                    idx = self._match(source, tag)
                    if idx is not None:
                        return self._messages[idx]
                    self._cond.wait(timeout=0.2)
            finally:
                self._world.note_running()


class _CollectiveEngine:
    """Generation-counted rendezvous used to implement every collective.

    All ranks of a communicator call :meth:`exchange` in the same program
    order (the SPMD contract); each call gathers one value from every rank and
    returns the full list to all of them.
    """

    def __init__(
        self,
        world: "World",
        nranks: int,
        members: Optional[List[int]] = None,
    ) -> None:
        self._world = world
        self._nranks = nranks
        #: world ranks backing each slot (for exit-imbalance diagnosis)
        self._members = list(members) if members is not None else list(range(nranks))
        self._cond = threading.Condition()
        self._generation = 0
        self._arrived = 0
        self._arrived_ranks: set = set()
        self._slots: List[Any] = [None] * nranks
        self._results: Dict[int, List[Any]] = {}
        self._readers_left: Dict[int, int] = {}

    def wake(self) -> None:
        with self._cond:
            self._cond.notify_all()

    def _check_exited_peers(self, index: int, value: Any, gen: int) -> None:
        """With the lockstep check armed, a peer that already returned from
        its SPMD function can never join this rendezvous: fail now instead
        of sitting in the deadlock timeout (an arity mismatch — one rank
        issued more collectives than its peers — looks exactly like this)."""
        if gen != self._generation:
            return
        exited = [
            self._members[i]
            for i in range(self._nranks)
            if i not in self._arrived_ranks
            and self._world.has_finished(self._members[i])
        ]
        if not exited:
            return
        record = value[3] if isinstance(value, tuple) and len(value) > 3 else None
        where = (
            f"{record[0]}() #{record[2]} at {record[1]}"
            if record is not None
            else f"collective #{gen}"
        )
        ranks = ", ".join(str(r) for r in exited)
        raise CollectiveMismatchError(
            f"collective lockstep mismatch: rank {self._members[index]} is "
            f"waiting in {where} but rank(s) {ranks} already returned from "
            f"the SPMD function — one side issued more collectives than the "
            f"other"
        )

    def exchange(self, index: int, value: Any, watch_exits: bool = False) -> List[Any]:
        with self._cond:
            gen = self._generation
            self._slots[index] = value
            self._arrived += 1
            self._arrived_ranks.add(index)
            if self._arrived == self._nranks:
                self._results[gen] = list(self._slots)
                self._readers_left[gen] = self._nranks
                self._slots = [None] * self._nranks
                self._arrived = 0
                self._arrived_ranks = set()
                self._generation += 1
                self._cond.notify_all()
            else:
                self._world.note_waiting("collective")
                try:
                    while gen not in self._results:
                        self._world.check_abort()
                        if watch_exits:
                            self._check_exited_peers(index, value, gen)
                        self._cond.wait(timeout=0.2)
                finally:
                    self._world.note_running()
            result = self._results[gen]
            self._readers_left[gen] -= 1
            if self._readers_left[gen] == 0:
                del self._results[gen]
                del self._readers_left[gen]
            return result


class World:
    """All shared state for one simulated MPI execution."""

    def __init__(
        self,
        nprocs: int,
        cost_model: Optional[CommCostModel] = None,
        compute_scale: float = 1.0,
    ) -> None:
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        self.nprocs = nprocs
        self.cost_model = cost_model or CommCostModel()
        self.clocks = [VirtualClock(compute_scale=compute_scale) for _ in range(nprocs)]
        self.mailboxes = [_Mailbox(self) for _ in range(nprocs)]
        self._engines: Dict[int, _CollectiveEngine] = {}
        self._engines_lock = threading.Lock()
        self._abort_exc: Optional[BaseException] = None
        self._abort_rank: Optional[int] = None
        #: rank -> communication op ("recv"/"collective") it is blocked in;
        #: purely diagnostic — the launcher reads it on timeout to tell a
        #: deadlock from a long-running computation
        self._waiting: Dict[int, str] = {}
        self._waiting_lock = threading.Lock()
        #: world ranks whose SPMD function has returned (the launcher marks
        #: them); armed collective waiters use this to detect peers that can
        #: never join their rendezvous
        self._finished: set = set()
        self._finished_lock = threading.Lock()
        #: arbitrary per-run shared objects (e.g. the simulated filesystem)
        self.shared: Dict[str, Any] = {}

    # ------------------------------------------------------------------ #
    def engine(
        self,
        comm_id: int,
        nranks: int,
        members: Optional[List[int]] = None,
    ) -> _CollectiveEngine:
        """Collective engine for the communicator *comm_id* (created lazily).

        *members* maps the engine's slots to world ranks; it only matters
        for the armed lockstep check's exit-imbalance diagnosis."""
        with self._engines_lock:
            eng = self._engines.get(comm_id)
            if eng is None:
                eng = _CollectiveEngine(self, nranks, members)
                self._engines[comm_id] = eng
            return eng

    # ------------------------------------------------------------------ #
    # finished-rank tracking (armed lockstep check)
    # ------------------------------------------------------------------ #
    def note_finished(self, rank: int) -> None:
        """Mark *rank*'s SPMD function as returned and wake collective
        waiters so an armed rank blocked on it fails fast."""
        with self._finished_lock:
            self._finished.add(rank)
        with self._engines_lock:
            engines = list(self._engines.values())
        for eng in engines:
            eng.wake()

    def has_finished(self, rank: int) -> bool:
        with self._finished_lock:
            return rank in self._finished

    # ------------------------------------------------------------------ #
    # blocked-rank tracking (deadlock diagnosis)
    # ------------------------------------------------------------------ #
    def note_waiting(self, op: str) -> None:
        """Mark the calling rank as blocked in communication *op*."""
        rank = _thread_rank()
        if rank is None:
            return
        with self._waiting_lock:
            self._waiting[rank] = op

    def note_running(self) -> None:
        """Clear the calling rank's blocked marker."""
        rank = _thread_rank()
        if rank is None:
            return
        with self._waiting_lock:
            self._waiting.pop(rank, None)

    def waiting_ops(self) -> Dict[int, str]:
        """Snapshot of ``rank -> blocked op`` for currently waiting ranks."""
        with self._waiting_lock:
            return dict(self._waiting)

    # ------------------------------------------------------------------ #
    # abort machinery
    # ------------------------------------------------------------------ #
    def abort(self, exc: BaseException, rank: int) -> None:
        """Record a failure and wake every blocked rank."""
        if self._abort_exc is None:
            self._abort_exc = exc
            self._abort_rank = rank
        for mbox in self.mailboxes:
            mbox.wake()
        with self._engines_lock:
            engines = list(self._engines.values())
        for eng in engines:
            eng.wake()

    @property
    def aborted(self) -> bool:
        return self._abort_exc is not None

    @property
    def abort_exception(self) -> Optional[BaseException]:
        return self._abort_exc

    def check_abort(self) -> None:
        if self._abort_exc is not None:
            raise MPIAbortError(
                f"rank {self._abort_rank} failed: {self._abort_exc!r}"
            ) from self._abort_exc
