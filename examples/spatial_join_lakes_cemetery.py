#!/usr/bin/env python
"""End-to-end distributed spatial join (the paper's exemplar application).

"Find all pairs of lakes and cemeteries that intersect": two WKT layers are
read in parallel, spatially partitioned onto a cell grid, exchanged all-to-all
and joined cell by cell with the filter-and-refine technique.  The per-phase
breakdown printed at the end is the same decomposition the paper plots in
Figures 17–19.

Run it with::

    python examples/spatial_join_lakes_cemetery.py
"""

from __future__ import annotations

import tempfile

from repro import mpisim
from repro.core import GridPartitionConfig, PartitionConfig, SpatialJoin
from repro.datasets import SyntheticConfig, generate_dataset
from repro.mpisim import ops
from repro.pfs import LustreFilesystem

NPROCS = 4
NUM_CELLS = 64


def build_layers(root: str) -> LustreFilesystem:
    fs = LustreFilesystem(root)
    cfg = SyntheticConfig(seed=42, clusters=5)
    lakes = generate_dataset(fs, "lakes", scale=0.1, config=cfg)
    cemetery = generate_dataset(fs, "cemetery", scale=0.5, config=cfg)
    print(f"lakes:    {fs.file_size(lakes) / 1024:.1f} KiB")
    print(f"cemetery: {fs.file_size(cemetery) / 1024:.1f} KiB")
    return fs


def rank_program(comm: mpisim.Communicator, fs: LustreFilesystem):
    join = SpatialJoin(
        fs,
        partition_config=PartitionConfig(block_size=64 * 1024),
        grid_config=GridPartitionConfig(num_cells=NUM_CELLS),
    )
    result = join.run(comm, "datasets/lakes.wkt", "datasets/cemetery.wkt")

    pair_count = comm.allreduce(len(result.local_results), ops.SUM)
    if comm.rank == 0:
        print(f"\nspatial join produced {pair_count} intersecting (lake, cemetery) pairs")
        for pair in result.local_results[:5]:
            print(f"  cell {pair.cell_id}: {pair.left.userdata!r} x {pair.right.userdata!r}")
    return result.breakdown.as_dict()


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="mpi-vector-io-join-") as root:
        fs = build_layers(root)
        run = mpisim.run_spmd(rank_program, NPROCS, fs)

        print("\nper-phase breakdown (maximum over ranks, simulated seconds)")
        phases = ["io", "parse", "partition", "communication", "refine", "total"]
        maxima = {p: max(v[p] for v in run.values) for p in phases}
        for phase in phases:
            print(f"  {phase:<14} {maxima[phase]:.4f}")


if __name__ == "__main__":
    main()
