"""Message status and request objects."""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional

from .datatypes import Datatype

__all__ = ["Status", "Request", "ANY_SOURCE", "ANY_TAG"]

#: wildcard source rank (``MPI_ANY_SOURCE``)
ANY_SOURCE = -1
#: wildcard message tag (``MPI_ANY_TAG``)
ANY_TAG = -1


class Status:
    """Receive status: source, tag and byte count of the matched message.

    ``Get_count`` mirrors ``MPI_Get_count`` — the paper's Algorithm 1 uses it
    to find how many bytes of trailing-geometry data actually arrived when the
    receive buffer was sized for the worst case (11 MB).
    """

    def __init__(self) -> None:
        self.source: int = ANY_SOURCE
        self.tag: int = ANY_TAG
        self.nbytes: int = 0
        self.cancelled: bool = False

    def Get_source(self) -> int:
        return self.source

    def Get_tag(self) -> int:
        return self.tag

    def Get_count(self, datatype: Optional[Datatype] = None) -> int:
        """Number of *datatype* elements received (bytes when no type given)."""
        if datatype is None or datatype.size == 0:
            return self.nbytes
        if self.nbytes % datatype.size != 0:
            # MPI would return MPI_UNDEFINED; raising is more useful here.
            raise ValueError(
                f"received {self.nbytes} bytes is not a whole number of "
                f"{datatype.name} elements ({datatype.size} bytes each)"
            )
        return self.nbytes // datatype.size

    def __repr__(self) -> str:  # pragma: no cover
        return f"Status(source={self.source}, tag={self.tag}, nbytes={self.nbytes})"


class Request:
    """Handle for a non-blocking operation (``isend`` / ``irecv``)."""

    def __init__(self, complete_fn: Callable[[], Any]) -> None:
        self._complete_fn = complete_fn
        self._done = False
        self._result: Any = None
        self._lock = threading.Lock()

    def wait(self) -> Any:
        """Block until the operation completes and return its result."""
        with self._lock:
            if not self._done:
                self._result = self._complete_fn()
                self._done = True
            return self._result

    # Capitalised aliases matching mpi4py
    Wait = wait

    def test(self) -> tuple[bool, Any]:
        """Non-destructive completion check.

        The simulated runtime completes operations lazily inside
        :meth:`wait`, so ``test`` simply reports whether ``wait`` has been
        called; this is sufficient for the request patterns the library uses.
        """
        with self._lock:
            return (self._done, self._result)

    Test = test

    @property
    def completed(self) -> bool:
        return self._done
