"""Well-Known Text (WKT) reader and writer.

WKT is the paper's primary on-disk format: one geometry per line (optionally
followed by tab-separated attributes), e.g.::

    POLYGON ((30 10, 40 40, 20 40, 30 10))

The parser is a hand-written tokenizer + recursive-descent reader covering the
OGC types the paper mentions (POINT, LINESTRING, POLYGON, MULTIPOINT,
MULTILINESTRING, MULTIPOLYGON, GEOMETRYCOLLECTION) plus EMPTY geometries.  It
is deliberately tolerant of surrounding whitespace and attribute suffixes so
that raw dataset lines can be fed in directly — that mirrors the paper's
"collection of strings" parsing interface.
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence, Tuple

from .base import Geometry
from .linestring import LineString
from .multi import GeometryCollection, MultiLineString, MultiPoint, MultiPolygon
from .point import Point
from .polygon import Polygon

Coord = Tuple[float, float]

__all__ = [
    "WKTParseError",
    "loads",
    "dumps",
    "parse_wkt",
    "format_coord",
    "format_coords",
]


class WKTParseError(ValueError):
    """Raised when a WKT string cannot be parsed."""


# --------------------------------------------------------------------------- #
# formatting (dumps)
# --------------------------------------------------------------------------- #
def _fmt_number(v: float) -> str:
    """Format a coordinate value without trailing zeros (``30.0`` → ``30``)."""
    if v == int(v) and abs(v) < 1e16:
        return str(int(v))
    return repr(v)


def format_coord(coord: Coord) -> str:
    """``(x, y)`` → ``"x y"``."""
    return f"{_fmt_number(coord[0])} {_fmt_number(coord[1])}"


def format_coords(coords: Sequence[Coord]) -> str:
    """Coordinate list → ``"x1 y1, x2 y2, ..."``."""
    return ", ".join(format_coord(c) for c in coords)


def dumps(geom: Geometry) -> str:
    """Serialise a geometry to WKT (delegates to the geometry's own writer)."""
    return geom.wkt()


# --------------------------------------------------------------------------- #
# parsing (loads)
# --------------------------------------------------------------------------- #
_TOKEN_RE = re.compile(
    r"""
    (?P<word>[A-Za-z]+)
    | (?P<number>[-+]?(?:\d+\.?\d*|\.\d+)(?:[eE][-+]?\d+)?)
    | (?P<lparen>\()
    | (?P<rparen>\))
    | (?P<comma>,)
    """,
    re.VERBOSE,
)


class _Tokenizer:
    """Streams WKT tokens; stops cleanly at trailing attribute text."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self._peeked: Optional[Tuple[str, str]] = None

    def _scan(self) -> Optional[Tuple[str, str]]:
        while self.pos < len(self.text) and self.text[self.pos] in " \t\r\n":
            self.pos += 1
        if self.pos >= len(self.text):
            return None
        m = _TOKEN_RE.match(self.text, self.pos)
        if m is None:
            return None
        self.pos = m.end()
        kind = m.lastgroup or ""
        return (kind, m.group())

    def peek(self) -> Optional[Tuple[str, str]]:
        if self._peeked is None:
            self._peeked = self._scan()
        return self._peeked

    def next(self) -> Optional[Tuple[str, str]]:
        tok = self.peek()
        self._peeked = None
        return tok

    def expect(self, kind: str) -> str:
        tok = self.next()
        if tok is None or tok[0] != kind:
            raise WKTParseError(
                f"expected {kind} at position {self.pos} of {self.text[:80]!r}, got {tok}"
            )
        return tok[1]

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[str]:
        tok = self.peek()
        if tok is not None and tok[0] == kind and (value is None or tok[1].upper() == value):
            self.next()
            return tok[1]
        return None


def _parse_coord(tz: _Tokenizer) -> Coord:
    x = float(tz.expect("number"))
    y = float(tz.expect("number"))
    # Tolerate (and drop) Z / M ordinates.
    while True:
        tok = tz.peek()
        if tok is not None and tok[0] == "number":
            tz.next()
        else:
            break
    return (x, y)


def _parse_coord_list(tz: _Tokenizer) -> List[Coord]:
    tz.expect("lparen")
    coords = [_parse_coord(tz)]
    while tz.accept("comma"):
        coords.append(_parse_coord(tz))
    tz.expect("rparen")
    return coords


def _parse_ring_list(tz: _Tokenizer) -> List[List[Coord]]:
    tz.expect("lparen")
    rings = [_parse_coord_list(tz)]
    while tz.accept("comma"):
        rings.append(_parse_coord_list(tz))
    tz.expect("rparen")
    return rings


def _is_empty(tz: _Tokenizer) -> bool:
    return tz.accept("word", "EMPTY") is not None


def _parse_point(tz: _Tokenizer) -> Point:
    if _is_empty(tz):
        raise WKTParseError("POINT EMPTY is not supported")
    tz.expect("lparen")
    coord = _parse_coord(tz)
    tz.expect("rparen")
    return Point(*coord)


def _parse_linestring(tz: _Tokenizer) -> LineString:
    if _is_empty(tz):
        raise WKTParseError("LINESTRING EMPTY is not supported")
    return LineString(_parse_coord_list(tz))


def _parse_polygon(tz: _Tokenizer) -> Polygon:
    if _is_empty(tz):
        raise WKTParseError("POLYGON EMPTY is not supported")
    rings = _parse_ring_list(tz)
    return Polygon(rings[0], rings[1:])


def _parse_multipoint(tz: _Tokenizer) -> MultiPoint:
    if _is_empty(tz):
        return MultiPoint([])
    tz.expect("lparen")
    points: List[Point] = []
    while True:
        # MULTIPOINT accepts both "(1 2, 3 4)" and "((1 2), (3 4))".
        if tz.accept("lparen"):
            coord = _parse_coord(tz)
            tz.expect("rparen")
        else:
            coord = _parse_coord(tz)
        points.append(Point(*coord))
        if not tz.accept("comma"):
            break
    tz.expect("rparen")
    return MultiPoint(points)


def _parse_multilinestring(tz: _Tokenizer) -> MultiLineString:
    if _is_empty(tz):
        return MultiLineString([])
    lines = [LineString(c) for c in _parse_ring_list(tz)]
    return MultiLineString(lines)


def _parse_multipolygon(tz: _Tokenizer) -> MultiPolygon:
    if _is_empty(tz):
        return MultiPolygon([])
    tz.expect("lparen")
    polys: List[Polygon] = []
    while True:
        rings = _parse_ring_list(tz)
        polys.append(Polygon(rings[0], rings[1:]))
        if not tz.accept("comma"):
            break
    tz.expect("rparen")
    return MultiPolygon(polys)


def _parse_collection(tz: _Tokenizer) -> GeometryCollection:
    if _is_empty(tz):
        return GeometryCollection([])
    tz.expect("lparen")
    geoms: List[Geometry] = []
    while True:
        geoms.append(_parse_geometry(tz))
        if not tz.accept("comma"):
            break
    tz.expect("rparen")
    return GeometryCollection(geoms)


_PARSERS = {
    "POINT": _parse_point,
    "LINESTRING": _parse_linestring,
    "POLYGON": _parse_polygon,
    "MULTIPOINT": _parse_multipoint,
    "MULTILINESTRING": _parse_multilinestring,
    "MULTIPOLYGON": _parse_multipolygon,
    "GEOMETRYCOLLECTION": _parse_collection,
}


def _parse_geometry(tz: _Tokenizer) -> Geometry:
    tok = tz.next()
    if tok is None or tok[0] != "word":
        raise WKTParseError(f"expected a geometry tag, got {tok}")
    tag = tok[1].upper()
    parser = _PARSERS.get(tag)
    if parser is None:
        raise WKTParseError(f"unknown geometry tag {tag!r}")
    return parser(tz)


def loads(text: str, userdata=None) -> Geometry:
    """Parse a WKT string into a geometry.

    Text after the closing parenthesis (e.g. tab-separated feature
    attributes on an OSM extract line) is ignored by the geometry parser but,
    when *userdata* is ``None``, stored in the returned geometry's
    ``userdata`` attribute so downstream code can keep the attributes around —
    the same role GEOS userdata plays in the paper.
    """
    tz = _Tokenizer(text)
    geom = _parse_geometry(tz)
    trailing = text[tz.pos :].strip()
    if userdata is not None:
        geom.userdata = userdata
    elif trailing:
        geom.userdata = trailing
    return geom


# Friendly alias matching the paper's "parse interface" naming.
parse_wkt = loads
