"""Binary fixed-record datasets (points and MBRs).

§4.1: "Unlike polygons that vary in length, spatial types like points, lines,
and MBRs have fixed length.  Files containing these special types are
preprocessed and stored in binary as basic or struct type."  These are the
files used by the MPI-derived-datatype experiments (Figures 12 and 15) and by
spatial index files that need frequent, regular access.
"""

from __future__ import annotations

import random
import struct
from typing import Iterable, List, Optional, Tuple

import numpy as np

from ..geometry import Envelope
from ..pfs import SimulatedFilesystem, StripeLayout

__all__ = [
    "MBR_RECORD_FLOAT32",
    "MBR_RECORD_FLOAT64",
    "POINT_RECORD_FLOAT64",
    "write_mbr_file",
    "write_point_file",
    "read_mbr_records",
    "read_point_records",
    "read_mbr_file",
    "read_point_file",
    "validate_record_file",
    "random_envelopes",
]

#: an MBR record of 4 single-precision floats (Figure 12 / 15's record)
MBR_RECORD_FLOAT32 = struct.Struct("<4f")
#: an MBR record of 4 doubles (matches the MPI_RECT spatial datatype)
MBR_RECORD_FLOAT64 = struct.Struct("<4d")
#: a point record of 2 doubles (matches MPI_POINT)
POINT_RECORD_FLOAT64 = struct.Struct("<2d")


def random_envelopes(
    count: int,
    extent: Envelope = Envelope(-180.0, -90.0, 180.0, 90.0),
    max_size_fraction: float = 0.01,
    seed: int = 7,
) -> List[Envelope]:
    """Uniformly placed random rectangles (the Reduce/Scan benchmark input)."""
    rng = random.Random(seed)
    out: List[Envelope] = []
    wx = extent.width * max_size_fraction
    wy = extent.height * max_size_fraction
    for _ in range(count):
        x = rng.uniform(extent.minx, extent.maxx - wx)
        y = rng.uniform(extent.miny, extent.maxy - wy)
        w = rng.uniform(0.0, wx)
        h = rng.uniform(0.0, wy)
        out.append(Envelope(x, y, x + w, y + h))
    return out


def write_mbr_file(
    fs: SimulatedFilesystem,
    path: str,
    envelopes: Iterable[Envelope],
    precision: str = "float32",
    layout: Optional[StripeLayout] = None,
) -> int:
    """Write envelopes as fixed binary records; returns the record count."""
    record = MBR_RECORD_FLOAT32 if precision == "float32" else MBR_RECORD_FLOAT64
    out = bytearray()
    count = 0
    for env in envelopes:
        out += record.pack(*env.as_tuple())
        count += 1
    fs.create_file(path, bytes(out), layout=layout)
    return count


def write_point_file(
    fs: SimulatedFilesystem,
    path: str,
    points: Iterable[Tuple[float, float]],
    layout: Optional[StripeLayout] = None,
) -> int:
    """Write (x, y) pairs as fixed binary records; returns the record count."""
    out = bytearray()
    count = 0
    for x, y in points:
        out += POINT_RECORD_FLOAT64.pack(x, y)
        count += 1
    fs.create_file(path, bytes(out), layout=layout)
    return count


def _check_whole_records(nbytes: int, record_size: int, what: str, source: str) -> None:
    if nbytes % record_size != 0:
        raise ValueError(
            f"{source} holds {nbytes} bytes, which is not a whole number of "
            f"{record_size}-byte {what} records ({nbytes % record_size} trailing "
            f"bytes); the file is truncated, padded or uses a different record type"
        )


def validate_record_file(fs: SimulatedFilesystem, path: str, record_size: int) -> int:
    """Check that *path*'s size is a whole multiple of *record_size*.

    Returns the record count; raises :class:`ValueError` with the offending
    sizes spelled out otherwise (never silently drops a partial record).
    """
    if record_size <= 0:
        raise ValueError("record_size must be positive")
    nbytes = fs.file_size(path)
    _check_whole_records(nbytes, record_size, "fixed-size", f"file {path!r}")
    return nbytes // record_size


def read_mbr_records(data: bytes, precision: str = "float32") -> List[Envelope]:
    """Decode packed MBR records back into envelopes."""
    record = MBR_RECORD_FLOAT32 if precision == "float32" else MBR_RECORD_FLOAT64
    _check_whole_records(len(data), record.size, f"MBR ({precision})", "byte string")
    return [Envelope(*record.unpack_from(data, i)) for i in range(0, len(data), record.size)]


def read_point_records(data: bytes) -> np.ndarray:
    """Decode packed point records into an ``(n, 2)`` float64 array."""
    _check_whole_records(len(data), POINT_RECORD_FLOAT64.size, "point", "byte string")
    return np.frombuffer(data, dtype=np.float64).reshape(-1, 2).copy()


def read_mbr_file(
    fs: SimulatedFilesystem, path: str, precision: str = "float32"
) -> List[Envelope]:
    """Read a whole MBR file, validating its size against the record size."""
    record = MBR_RECORD_FLOAT32 if precision == "float32" else MBR_RECORD_FLOAT64
    count = validate_record_file(fs, path, record.size)
    with fs.open(path) as fh:
        return read_mbr_records(fh.pread(0, count * record.size), precision)


def read_point_file(fs: SimulatedFilesystem, path: str) -> np.ndarray:
    """Read a whole point file, validating its size against the record size."""
    count = validate_record_file(fs, path, POINT_RECORD_FLOAT64.size)
    with fs.open(path) as fh:
        return read_point_records(fh.pread(0, count * POINT_RECORD_FLOAT64.size))
