"""Cross-cutting integration tests covering paths the focused unit suites do
not reach: alternative access levels and strategies end to end, file-view
writes, custom filter-and-refine computations, and runtime utilities."""

import pytest

from repro import mpisim
from repro.core import (
    GridPartitionConfig,
    PartitionConfig,
    SpatialComputation,
    SpatialJoin,
    VectorIO,
    WKTParser,
)
from repro.datasets import SyntheticConfig, generate_dataset
from repro.geometry import Envelope, Point
from repro.io import File, Info
from repro.mpisim import CommCostModel, ops, payload_nbytes
from repro.pfs import LustreFilesystem


@pytest.fixture
def lustre(tmp_path):
    fs = LustreFilesystem(tmp_path / "lustre")
    cfg = SyntheticConfig(seed=21, clusters=3)
    generate_dataset(fs, "lakes", scale=0.04, config=cfg)
    generate_dataset(fs, "cemetery", scale=0.2, config=cfg)
    return fs


class TestAccessLevelAndStrategyMatrix:
    """Every combination of access level and partitioning strategy must return
    the same set of geometries."""

    @pytest.mark.parametrize("level", [0, 1])
    @pytest.mark.parametrize("strategy", ["message", "overlap"])
    def test_read_matrix(self, lustre, level, strategy):
        def prog(comm):
            vio = VectorIO(
                lustre,
                PartitionConfig(block_size=32 * 1024, level=level, max_geometry_size=1 << 20),
                strategy=strategy,
            )
            report = vio.read_geometries(comm, "datasets/lakes.wkt")
            return comm.allreduce(report.num_geometries, ops.SUM)

        res = mpisim.run_spmd(prog, 3)
        assert res.values[0] == 160  # 4000 * 0.04

    def test_join_with_overlap_strategy_and_window(self, lustre):
        def prog(comm, strategy, window):
            join = SpatialJoin(
                lustre,
                partition_config=PartitionConfig(block_size=32 * 1024, max_geometry_size=1 << 20),
                grid_config=GridPartitionConfig(num_cells=16),
                strategy=strategy,
                exchange_window=window,
            )
            return join.count_pairs(comm, "datasets/lakes.wkt", "datasets/cemetery.wkt")

        baseline = mpisim.run_spmd(prog, 2, "message", None).values[0]
        overlap = mpisim.run_spmd(prog, 2, "overlap", None).values[0]
        windowed = mpisim.run_spmd(prog, 2, "message", 4).values[0]
        assert baseline == overlap == windowed

    def test_block_mapping_strategy(self, lustre):
        def prog(comm):
            join = SpatialJoin(
                lustre,
                grid_config=GridPartitionConfig(num_cells=16, mapping="block"),
            )
            return join.count_pairs(comm, "datasets/lakes.wkt", "datasets/cemetery.wkt")

        round_robin = mpisim.run_spmd(prog, 2).values[0]

        def prog_rr(comm):
            join = SpatialJoin(lustre, grid_config=GridPartitionConfig(num_cells=16))
            return join.count_pairs(comm, "datasets/lakes.wkt", "datasets/cemetery.wkt")

        assert round_robin == mpisim.run_spmd(prog_rr, 2).values[0]


class TestCustomComputation:
    def test_single_layer_histogram_computation(self, lustre):
        """A user-defined SpatialComputation: per-cell geometry counts."""

        class CellHistogram(SpatialComputation):
            def refine(self, cell, left, right):
                return [(cell.cell_id, len(left))]

        def prog(comm):
            comp = CellHistogram(lustre, grid_config=GridPartitionConfig(num_cells=9))
            result = comp.run(comm, "datasets/cemetery.wkt")
            return result.local_results

        res = mpisim.run_spmd(prog, 3)
        total = sum(count for chunk in res.values for _, count in chunk)
        # every parsed geometry is counted at least once (replicas possible)
        parser = WKTParser()
        with lustre.open("datasets/cemetery.wkt") as fh:
            expected = len(parser.parse_buffer(fh.pread(0, fh.size)))
        assert total >= expected


class TestFileViewWrites:
    def test_write_all_through_view(self, lustre):
        lustre.create_file("out.bin", b"\x00" * 64)

        def prog(comm):
            fh = File.Open(comm, lustre, "out.bin", mode="r+")
            fh.Set_view(disp=comm.rank * 16)
            fh.write_all(bytes([65 + comm.rank]) * 16)
            comm.barrier()
            fh.Set_view(disp=0)
            return fh.read_at(0, 64)

        res = mpisim.run_spmd(prog, 4)
        assert res.values[0] == b"A" * 16 + b"B" * 16 + b"C" * 16 + b"D" * 16

    def test_independent_read_without_contention_model(self, lustre):
        lustre.create_file("small.bin", b"0123456789abcdef")

        def prog(comm):
            fh = File.Open(comm, lustre, "small.bin")
            return fh.read_at_nb(4, 4)

        assert mpisim.run_spmd(prog, 2).values[0] == b"4567"

    def test_seek_negative_rejected(self, lustre):
        lustre.create_file("s.bin", b"xy")

        def prog(comm):
            fh = File.Open(comm, lustre, "s.bin")
            fh.Seek(-1)

        with pytest.raises(mpisim.MPIError):
            mpisim.run_spmd(prog, 1)


class TestRuntimeUtilities:
    def test_payload_nbytes_variants(self):
        assert payload_nbytes(None) == 0
        assert payload_nbytes(b"abc") == 3
        assert payload_nbytes("abcd") == 4
        assert payload_nbytes(3.14) == 8
        assert payload_nbytes([b"ab", b"cd"]) == 4
        assert payload_nbytes({"k": list(range(100))}) > 0

    def test_spmd_breakdown_reports_categories(self, lustre):
        def prog(comm):
            vio = VectorIO(lustre)
            vio.read_geometries(comm, "datasets/cemetery.wkt")

        result = mpisim.run_spmd(prog, 2)
        breakdown = result.breakdown()
        assert breakdown["io"] > 0
        assert breakdown["parse"] > 0
        assert result.max_time >= max(breakdown.values())

    def test_custom_cost_model_slows_communication(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(b"x" * 1_000_000, dest=1)
            elif comm.rank == 1:
                comm.recv(source=0)
            return comm.clock.now

        fast = mpisim.run_spmd(prog, 2, cost_model=CommCostModel(bandwidth=10e9))
        slow = mpisim.run_spmd(prog, 2, cost_model=CommCostModel(bandwidth=0.1e9))
        assert max(slow.values) > max(fast.values)

    def test_info_hint_flows_through_partitioner(self, lustre):
        def prog(comm):
            cfg = PartitionConfig(block_size=32 * 1024, level=1, info=Info(cb_nodes=1))
            vio = VectorIO(lustre, cfg)
            report = vio.read_geometries(comm, "datasets/cemetery.wkt")
            return report.num_geometries

        res = mpisim.run_spmd(prog, 2)
        assert sum(res.values) == 80
