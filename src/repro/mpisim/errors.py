"""Exception types for the simulated MPI runtime."""

from __future__ import annotations

__all__ = [
    "MPIError",
    "MPIAbortError",
    "CollectiveMismatchError",
    "CountLimitError",
    "RankFaultError",
]


class MPIError(RuntimeError):
    """Base class for errors raised by the simulated MPI runtime."""


class MPIAbortError(MPIError):
    """Raised in every rank when one rank fails (mirrors ``MPI_Abort``).

    The original exception is attached as ``__cause__`` on the failing rank;
    other ranks blocked in communication calls are woken up with this error so
    an SPMD program can never deadlock on a peer that has already died.
    """


class RankFaultError(MPIError):
    """Raised by an attached communicator fault hook to simulate a rank-level
    communication fault (a flaky NIC, a dropped peer).

    Fault-injection harnesses attach a hook via
    :meth:`~repro.mpisim.comm.Communicator.attach_fault_hook`; the hook
    raises this error from inside a communication call on the targeted rank,
    which then propagates through the normal abort machinery exactly like a
    genuine rank failure would.
    """


class CollectiveMismatchError(MPIError):
    """Raised by the lockstep verifier when ranks disagree on a collective.

    With :meth:`~repro.mpisim.comm.Communicator.enable_collective_check`
    armed, every collective piggybacks an ``(op, callsite, seq, root)``
    record on its rendezvous.  If the gathered records disagree — one rank
    in ``barrier()`` while another is in ``bcast()``, or two ranks passing
    different ``root`` values — every participating rank raises this error
    naming the divergent ranks and both callsites, instead of the program
    dying much later in the virtual-clock deadlock timeout the same bug
    produces unarmed.
    """


class CountLimitError(MPIError):
    """Raised when a single I/O or communication call exceeds the 2 GB
    (signed 32-bit element count) ROMIO limitation described in §3 of the
    paper.  The reproduction enforces the same limit so that the block-size
    handling code paths stay honest."""
