"""Uniform cell grid.

The paper's spatial partitioning projects every geometry onto a cellular grid
(Figure 1): a cell is "an abstract type to represent a unit task", a subset of
cells is assigned to each process, and geometries spanning several cells are
replicated into each.  :class:`UniformGrid` implements the cell geometry and
the geometry→cells mapping; the distributed machinery on top of it lives in
:mod:`repro.core.grid_partition`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Tuple

from ..geometry import Envelope

__all__ = ["GridCell", "UniformGrid", "round_robin_mapping", "block_mapping"]


@dataclass(frozen=True)
class GridCell:
    """One cell of the uniform grid — the unit task of the system."""

    cell_id: int
    row: int
    col: int
    envelope: Envelope

    def __repr__(self) -> str:  # pragma: no cover
        return f"GridCell(id={self.cell_id}, row={self.row}, col={self.col})"


class UniformGrid:
    """A ``rows x cols`` uniform grid over a rectangular extent."""

    def __init__(self, extent: Envelope, rows: int, cols: int) -> None:
        if extent.is_empty:
            raise ValueError("grid extent must not be empty")
        if rows < 1 or cols < 1:
            raise ValueError("rows and cols must be >= 1")
        # Degenerate extents (all geometries on one line or one point) are
        # padded so every cell keeps a well-formed rectangle.
        if extent.width == 0 or extent.height == 0:
            pad = max(extent.width, extent.height, 1.0) * 0.5
            extent = Envelope(
                extent.minx - (pad if extent.width == 0 else 0.0),
                extent.miny - (pad if extent.height == 0 else 0.0),
                extent.maxx + (pad if extent.width == 0 else 0.0),
                extent.maxy + (pad if extent.height == 0 else 0.0),
            )
        self.extent = extent
        self.rows = rows
        self.cols = cols
        self.cell_width = extent.width / cols
        self.cell_height = extent.height / rows

    # ------------------------------------------------------------------ #
    @staticmethod
    def with_cell_count(extent: Envelope, num_cells: int) -> "UniformGrid":
        """Build a roughly square grid with approximately *num_cells* cells.

        The paper's experiments sweep the total number of grid cells
        (Figure 17 uses powers of two up to 2048); this helper picks a
        rows × cols factorisation close to square.
        """
        if num_cells < 1:
            raise ValueError("num_cells must be >= 1")
        rows = int(math.sqrt(num_cells))
        while rows > 1 and num_cells % rows != 0:
            rows -= 1
        cols = num_cells // rows
        return UniformGrid(extent, rows, cols)

    # ------------------------------------------------------------------ #
    @property
    def num_cells(self) -> int:
        return self.rows * self.cols

    def __len__(self) -> int:
        return self.num_cells

    def cell_id(self, row: int, col: int) -> int:
        """Row-major cell id (the global output ordering used by
        non-contiguous writes in the paper)."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise IndexError(f"cell ({row}, {col}) outside grid {self.rows}x{self.cols}")
        return row * self.cols + col

    def cell(self, row: int, col: int) -> GridCell:
        minx = self.extent.minx + col * self.cell_width
        miny = self.extent.miny + row * self.cell_height
        maxx = self.extent.maxx if col == self.cols - 1 else minx + self.cell_width
        maxy = self.extent.maxy if row == self.rows - 1 else miny + self.cell_height
        return GridCell(self.cell_id(row, col), row, col, Envelope(minx, miny, maxx, maxy))

    def cell_by_id(self, cell_id: int) -> GridCell:
        if not (0 <= cell_id < self.num_cells):
            raise IndexError(f"cell id {cell_id} outside grid of {self.num_cells} cells")
        return self.cell(cell_id // self.cols, cell_id % self.cols)

    def cells(self) -> Iterator[GridCell]:
        for row in range(self.rows):
            for col in range(self.cols):
                yield self.cell(row, col)

    # ------------------------------------------------------------------ #
    def _col_range(self, minx: float, maxx: float) -> Tuple[int, int]:
        lo = int((minx - self.extent.minx) / self.cell_width)
        hi = int((maxx - self.extent.minx) / self.cell_width)
        return (max(0, min(lo, self.cols - 1)), max(0, min(hi, self.cols - 1)))

    def _row_range(self, miny: float, maxy: float) -> Tuple[int, int]:
        lo = int((miny - self.extent.miny) / self.cell_height)
        hi = int((maxy - self.extent.miny) / self.cell_height)
        return (max(0, min(lo, self.rows - 1)), max(0, min(hi, self.rows - 1)))

    def cells_for_envelope(self, env: Envelope) -> List[int]:
        """Ids of every cell the envelope overlaps (the replication set).

        A geometry spanning multiple cells is "simply replicated to these
        cells" (paper §4); this is the mapping that drives replication.
        Envelopes outside the extent are clamped to the nearest boundary
        cells so no geometry is ever dropped.
        """
        if env.is_empty:
            return []
        col_lo, col_hi = self._col_range(env.minx, env.maxx)
        row_lo, row_hi = self._row_range(env.miny, env.maxy)
        ids: List[int] = []
        for row in range(row_lo, row_hi + 1):
            base = row * self.cols
            for col in range(col_lo, col_hi + 1):
                ids.append(base + col)
        return ids

    def cell_for_point(self, x: float, y: float) -> int:
        """Id of the single cell containing the point (clamped to the extent)."""
        col_lo, _ = self._col_range(x, x)
        row_lo, _ = self._row_range(y, y)
        return row_lo * self.cols + col_lo

    # ------------------------------------------------------------------ #
    def histogram(self, envelopes: Iterable[Envelope]) -> Dict[int, int]:
        """Number of (replicated) geometries per cell — the load map used to
        reason about load balance in the evaluation."""
        counts: Dict[int, int] = {}
        for env in envelopes:
            for cid in self.cells_for_envelope(env):
                counts[cid] = counts.get(cid, 0) + 1
        return counts


# --------------------------------------------------------------------------- #
# cell → rank mappings
# --------------------------------------------------------------------------- #
def round_robin_mapping(num_cells: int, num_ranks: int) -> Dict[int, int]:
    """The paper's default declustering mapping: cell *i* goes to rank
    ``i % num_ranks``."""
    if num_ranks < 1:
        raise ValueError("num_ranks must be >= 1")
    return {cid: cid % num_ranks for cid in range(num_cells)}


def block_mapping(num_cells: int, num_ranks: int) -> Dict[int, int]:
    """Contiguous block assignment (coarse-grained alternative used to show
    the load-imbalance effect of Figure 5a)."""
    if num_ranks < 1:
        raise ValueError("num_ranks must be >= 1")
    per_rank = math.ceil(num_cells / num_ranks)
    return {cid: min(cid // per_rank, num_ranks - 1) for cid in range(num_cells)}
