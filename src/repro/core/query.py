"""Batch range (window) queries.

"For spatial query workload, the second collection can be treated as
geometries from batch query" (§4.3): the query rectangles are simply the
second layer of the filter-and-refine framework, so the same partitioning and
exchange machinery applies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, List, Optional, Sequence, Tuple

from ..geometry import Envelope, Geometry, Polygon, predicates
from ..index import GridCell, STRtree
from ..mpisim import Communicator
from ..pfs import SimulatedFilesystem
from .framework import SpatialComputation
from .grid_partition import GridPartitionConfig
from .join import _reference_point
from .partition import PartitionConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..store import SpatialDataStore
    from ..store.sharded import DistributedStoreServer

__all__ = ["QueryMatch", "RangeQuery"]


@dataclass(frozen=True)
class QueryMatch:
    """One (query window, matching geometry) result."""

    query_id: Any
    geometry: Geometry
    cell_id: int


class RangeQuery(SpatialComputation):
    """Distributed batch range query over one data layer.

    The query batch is supplied in memory (a list of envelopes) rather than as
    a file; every rank contributes the slice of the batch it was handed and
    the framework redistributes the query windows alongside the data, exactly
    like a second dataset.
    """

    refine_category = "query"

    def __init__(
        self,
        fs: SimulatedFilesystem,
        queries: Sequence[Tuple[Any, Envelope]],
        partition_config: Optional[PartitionConfig] = None,
        grid_config: Optional[GridPartitionConfig] = None,
        strategy: str = "message",
        deduplicate: bool = True,
    ) -> None:
        super().__init__(fs, partition_config, grid_config, strategy)
        self.queries = list(queries)
        self.deduplicate = deduplicate

    # ------------------------------------------------------------------ #
    def refine(
        self,
        cell: GridCell,
        left: Sequence[Geometry],
        right: Sequence[Geometry],
    ) -> List[QueryMatch]:
        if not left or not right:
            return []
        tree: STRtree = STRtree((g.envelope, g) for g in left)
        matches: List[QueryMatch] = []
        for window in right:
            wenv = window.envelope
            for geom in tree.query(wenv):
                if self.deduplicate:
                    ref = _reference_point(wenv, geom.envelope)
                    if not cell.envelope.contains_point(*ref):
                        continue
                if predicates.intersects(window, geom):
                    matches.append(
                        QueryMatch(query_id=window.userdata, geometry=geom, cell_id=cell.cell_id)
                    )
        return matches

    # ------------------------------------------------------------------ #
    def execute_from_store(self, store: "SpatialDataStore") -> List[QueryMatch]:
        """Serve the query batch from a persistent :class:`SpatialDataStore`.

        The alternative data source to :meth:`execute`: instead of re-reading,
        re-partitioning and re-indexing the raw dataset, the whole batch is
        answered in one ``range_query_batch`` pass through the store's staged
        **plan → schedule → refine** engine (:class:`repro.store.StoreEngine`)
        — windows ordered along the shared Hilbert visit order for page-cache
        locality, page touches deduped across queries, reads coalesced into
        scheduler runs.  Replica de-duplication happens inside the store (by
        logical record id), so no reference-point test is needed; ``cell_id``
        reports the partition of the page that served the match.
        """
        per_query = store.range_query_batch(self.queries, exact=True)
        matches: List[QueryMatch] = []
        for (qid, _), hits in zip(self.queries, per_query):
            for hit in hits:
                matches.append(
                    QueryMatch(query_id=qid, geometry=hit.geometry, cell_id=hit.partition_id)
                )
        return matches

    # ------------------------------------------------------------------ #
    def execute_distributed_from_store(
        self,
        comm: Communicator,
        server: "DistributedStoreServer",
        broadcast: bool = False,
    ) -> Optional[List[QueryMatch]]:
        """Serve the query batch from a sharded store across ranks (collective).

        The distributed counterpart of :meth:`execute_from_store`: the server
        routes each window to the shards whose extents it intersects, scatters
        the batch, answers locally through each shard store's engine (the same
        plan → schedule → refine pipeline as the single-store path, per-rank
        page caches included) and gathers the record-id-de-duplicated hits at
        rank 0.  Rank 0 returns the matches (``cell_id`` is the global
        partition that served the hit, as in the single-store path); other
        ranks return ``None`` unless *broadcast*.  For many concurrent
        batches, :class:`repro.store.AsyncStoreFrontend` multiplexes them over
        one server with the serving phases overlapped.
        """
        hits = server.range_query_batch(
            self.queries if comm.rank == 0 else None, exact=True, broadcast=broadcast
        )
        if hits is None:
            return None
        return [
            QueryMatch(query_id=h.query_id, geometry=h.geometry, cell_id=h.partition_id)
            for h in hits
        ]

    # ------------------------------------------------------------------ #
    def execute(self, comm: Communicator, data_path: str) -> List[QueryMatch]:
        """Run the batch query; every rank returns the matches of its cells."""
        # Convert the batch to polygon geometries carrying the query id, and
        # hand an equal slice to every rank (the framework redistributes them).
        my_slice = [
            Polygon.from_envelope(env, userdata=qid)
            for i, (qid, env) in enumerate(self.queries)
            if i % comm.size == comm.rank
        ]
        return self._run_with_batch(comm, data_path, my_slice)

    def _run_with_batch(
        self, comm: Communicator, data_path: str, batch: List[Polygon]
    ) -> List[QueryMatch]:
        from .exchange import exchange_cells
        from .grid_partition import (
            assign_to_cells,
            build_grid,
            cell_mapping,
            cell_rtree,
            compute_global_extent,
        )
        from .reader import VectorIO

        vio = VectorIO(self.fs, self.partition_config, self.strategy)
        data_report = vio.read_geometries(comm, data_path, self.parser())
        data_geoms = data_report.geometries

        extent = compute_global_extent(comm, list(data_geoms) + list(batch))
        if extent.is_empty:
            return []
        grid = build_grid(extent, self.grid_config.num_cells)
        mapping = cell_mapping(grid, comm.size, self.grid_config.mapping)

        with comm.clock.compute(category="partition"):
            tree = cell_rtree(grid)
            data_cells = assign_to_cells(grid, data_geoms, tree)
            query_cells = assign_to_cells(grid, batch, tree)

        owned_data = exchange_cells(comm, data_cells, mapping)
        owned_queries = exchange_cells(comm, query_cells, mapping)

        matches: List[QueryMatch] = []
        with comm.clock.compute(category="refine"):
            for cell_id in sorted(set(owned_data) | set(owned_queries)):
                cell = grid.cell_by_id(cell_id)
                matches.extend(
                    self.refine(cell, owned_data.get(cell_id, []), owned_queries.get(cell_id, []))
                )
        return matches
