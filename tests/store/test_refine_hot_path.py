"""Property battery for the vectorized refine/scan hot path (PR 9).

The bulk filter (flat envelope-column arrays, set-operation replica de-dup
and tombstone shadowing, page-level containment fast path, zero-copy lazy
rect hits) must be **observably identical** to the per-slot scalar loop it
replaced.  `RefineExecutor.refine_reference` keeps that scalar loop verbatim
as the oracle; this battery drives both over randomized stores — v1 and v2
payloads, multiple generations with tombstoned and updated ids, cross-shard
replicas, degenerate and empty MBRs, empty pages — and asserts equal hits,
equal decode counts and equal scan output, at 1/2/4 ranks.

Also covers the PR 9 accounting guarantees: `slots_scanned` /
`bulk_filter_batches` counters, EXPLAIN selectivity, and the degraded-path
rule that a quarantined page is reported as *failed*, never silently counted
as a zero-survivor bulk scan.
"""

import random

import pytest

from repro import mpisim
from repro.datasets import random_envelopes
from repro.geometry import Envelope, LineString, Point, Polygon, wkb
from repro.pfs import LustreFilesystem
from repro.store import (
    DistributedStoreServer,
    PageChecksumError,
    PageKey,
    RecordView,
    SpatialDataStore,
    StoreAppender,
    bulk_load,
    sharded_bulk_load,
)
from repro.store.engine import PlanEntry, RefineExecutor
from repro.store.format import encode_page_v2, encode_record_body
from repro.store.page import CachedPage

EXTENT = Envelope(0.0, 0.0, 100.0, 100.0)


def mixed_geometries(count, seed):
    """Polygons, axis-aligned linestrings (degenerate MBRs: zero height or
    width) and points (fully degenerate MBRs), with integer userdata."""
    rng = random.Random(seed)
    out = []
    for i, env in enumerate(
        random_envelopes(count, extent=EXTENT, max_size_fraction=0.08, seed=seed)
    ):
        kind = rng.random()
        if kind < 0.55:
            out.append(Polygon.from_envelope(env, userdata=i))
        elif kind < 0.7:
            # horizontal line: degenerate (zero-height) MBR
            out.append(
                LineString([(env.minx, env.miny), (env.maxx, env.miny)], userdata=i)
            )
        elif kind < 0.85:
            out.append(
                LineString([(env.minx, env.miny), (env.maxx, env.maxy)], userdata=i)
            )
        else:
            out.append(Point(env.minx, env.miny, userdata=i))
    return out


def probe_windows(n, seed, frac=0.2):
    wins = list(
        random_envelopes(n, extent=EXTENT, max_size_fraction=frac, seed=seed)
    )
    wins.append(EXTENT)  # whole-extent: exercises the page-contained fast path
    wins.append(Envelope(40.0, 40.0, 41.0, 41.0))
    return wins


def hit_key(h):
    geom = h.geometry
    if isinstance(geom, RecordView):
        geom = geom.geometry
    return (
        h.record_id,
        h.partition_id,
        h.page_id,
        h.generation,
        wkb.dumps(geom),
        geom.userdata,
    )


def refine_both_ways(store, window, exact):
    """Run one window through the bulk refine and the scalar reference over
    the same fetched pages; returns (bulk_hits, reference_hits)."""
    plan = store.engine.planner.plan([(0, window)])
    executor = store.engine.executor
    bulk, ref = [], []
    for entry in plan.entries:
        pages = store._get_pages(entry.by_page)
        bulk.extend(executor.refine(entry, pages, exact))
        ref.extend(executor.refine_reference(entry, pages, exact))
    return bulk, ref


@pytest.fixture(scope="module")
def fs(tmp_path_factory):
    return LustreFilesystem(tmp_path_factory.mktemp("hotfs"), ost_count=8)


@pytest.fixture(scope="module")
def geoms():
    return mixed_geometries(400, seed=901)


@pytest.fixture(scope="module")
def v2_name(fs, geoms):
    bulk_load(fs, "hot_v2", geoms, num_partitions=16, page_size=1024)
    return "hot_v2"


@pytest.fixture(scope="module")
def v1_name(fs, geoms):
    bulk_load(fs, "hot_v1", geoms, num_partitions=16, page_size=1024,
              format_version=1)
    return "hot_v1"


@pytest.fixture(scope="module")
def gen_store(fs, geoms):
    """A three-generation store with updates (shadowing) and tombstones,
    plus the expected visible ``{record_id: geometry}`` map."""
    bulk_load(fs, "hot_gen", geoms, num_partitions=16, page_size=1024)
    visible = {i: g for i, g in enumerate(geoms)}

    moved = mixed_geometries(30, seed=902)
    appender = StoreAppender(fs, "hot_gen")
    update_ids = list(range(10, 40))
    appender.append(moved, record_ids=update_ids, deletes=list(range(200, 230)))
    for rid, g in zip(update_ids, moved):
        visible[rid] = g
    for rid in range(200, 230):
        visible.pop(rid)

    fresh = mixed_geometries(40, seed=903)
    fresh_ids = list(range(1000, 1040))
    appender.append(fresh, record_ids=fresh_ids, deletes=list(range(25, 35)))
    for rid, g in zip(fresh_ids, fresh):
        visible[rid] = g
    for rid in range(25, 35):
        visible.pop(rid)
    return "hot_gen", visible


@pytest.fixture(scope="module")
def sharded_name(fs, geoms):
    sharded_bulk_load(fs, "hot_sharded", geoms, num_shards=4, num_partitions=16)
    return "hot_sharded"


def brute_force(visible, window):
    if isinstance(window, Envelope):
        if window.is_empty:
            return []
        poly = Polygon.from_envelope(window)
    else:
        poly = window
    from repro.geometry import predicates

    return sorted(
        rid
        for rid, g in visible.items()
        if g.envelope.intersects(poly.envelope) and predicates.intersects(poly, g)
    )


# --------------------------------------------------------------------------- #
# vectorized == scalar reference
# --------------------------------------------------------------------------- #
class TestBulkEqualsReference:
    @pytest.mark.parametrize("exact", [True, False])
    def test_v2_windows(self, fs, v2_name, exact):
        store = SpatialDataStore.open(fs, v2_name, cache_pages=1024)
        for window in probe_windows(20, seed=11):
            bulk, ref = refine_both_ways(store, window, exact)
            assert [hit_key(h) for h in bulk] == [hit_key(h) for h in ref]

    @pytest.mark.parametrize("exact", [True, False])
    def test_v1_windows(self, fs, v1_name, exact):
        store = SpatialDataStore.open(fs, v1_name, cache_pages=1024)
        for window in probe_windows(20, seed=12):
            bulk, ref = refine_both_ways(store, window, exact)
            assert [hit_key(h) for h in bulk] == [hit_key(h) for h in ref]

    @pytest.mark.parametrize("exact", [True, False])
    def test_generations_tombstones_updates(self, fs, gen_store, exact):
        name, visible = gen_store
        store = SpatialDataStore.open(fs, name, cache_pages=1024)
        for window in probe_windows(20, seed=13):
            bulk, ref = refine_both_ways(store, window, exact)
            assert [hit_key(h) for h in bulk] == [hit_key(h) for h in ref]
            if exact:
                assert [h.record_id for h in bulk] == brute_force(visible, window)

    def test_geometry_windows(self, fs, geoms, v2_name):
        # non-rectangular windows: the predicate path, no rect shortcut
        store = SpatialDataStore.open(fs, v2_name, cache_pages=1024)
        for probe in geoms[:25]:
            bulk, ref = refine_both_ways(store, probe, exact=True)
            assert [hit_key(h) for h in bulk] == [hit_key(h) for h in ref]

    def test_v1_equals_v2(self, fs, v1_name, v2_name):
        v1 = SpatialDataStore.open(fs, v1_name, cache_pages=1024)
        v2 = SpatialDataStore.open(fs, v2_name, cache_pages=1024)
        for window in probe_windows(15, seed=14):
            ids1 = [h.record_id for h in v1.range_query(window)]
            ids2 = [h.record_id for h in v2.range_query(window)]
            assert ids1 == ids2

    def test_records_decoded_parity_with_reference(self, fs, gen_store):
        # the bulk path must decode exactly the slots the scalar loop did
        name, _ = gen_store
        windows = probe_windows(15, seed=15)

        bulk_store = SpatialDataStore.open(fs, name, cache_pages=1024)
        for window in windows:
            bulk_store.range_query(window)
        bulk_decoded = bulk_store.stats.records_decoded

        ref_store = SpatialDataStore.open(fs, name, cache_pages=1024)
        executor = ref_store.engine.executor
        for window in windows:
            plan = ref_store.engine.planner.plan([(0, window)])
            for entry in plan.entries:
                pages = ref_store._get_pages(entry.by_page)
                executor.refine_reference(entry, pages, exact=True)
        assert bulk_decoded == ref_store.stats.records_decoded

    def test_v1_pages_upgrade_once_and_stay_correct(self, fs, v1_name):
        store = SpatialDataStore.open(fs, v1_name, cache_pages=1024)
        window = Envelope(10.0, 10.0, 70.0, 70.0)
        first = [hit_key(h) for h in store.range_query(window)]
        # the touched v1 pages now carry parsed envelope columns
        upgraded = [
            page
            for page in store._cache._entries.values()
            if page.has_envelopes and page.version == 1
        ]
        assert upgraded
        for page in upgraded:
            for slot in range(len(page)):
                env = page.envelope(slot)
                assert env is not None
                assert env.as_tuple() == page.record(slot)[1].envelope.as_tuple()
        assert [hit_key(h) for h in store.range_query(window)] == first


# --------------------------------------------------------------------------- #
# hand-built pages: empty MBRs, empty pages, intra-page duplicates
# --------------------------------------------------------------------------- #
def build_page(entries, page_id=0):
    payload = encode_page_v2(
        [(rid, env, encode_record_body(g)) for rid, env, g in entries]
    )
    return CachedPage(page_id, payload, version=2)


class TestHandBuiltPages:
    def test_empty_envelope_slot_never_takes_the_shortcut(self):
        # an empty MBR's ±inf sentinels satisfy naive boundary comparisons
        # vacuously; the mask must still say "not contained"
        g = Point(5.0, 5.0, userdata="x")
        page = build_page(
            [(0, g.envelope, g), (1, Envelope.empty(), g), (2, g.envelope, g)]
        )
        mask = page.contained_mask([0, 1, 2], 0.0, 0.0, 100.0, 100.0)
        assert mask == [True, False, True]
        # and the page-level summary refuses the all-contained fast path
        assert page.env_summary()[4] is True

    def test_refine_matches_reference_on_empty_mbr_slots(self):
        g = Point(5.0, 5.0, userdata="x")
        h = Point(50.0, 50.0, userdata="y")
        page = build_page(
            [(0, g.envelope, g), (1, Envelope.empty(), h), (2, h.envelope, h)]
        )
        key = PageKey(0, 0)
        entry = PlanEntry(0, None, EXTENT, None, {key: [0, 1, 2]})
        executor = RefineExecutor({key: 7})
        bulk = executor.refine(entry, {key: page}, exact=True)
        ref = executor.refine_reference(entry, {key: page}, exact=True)
        assert [hit_key(x) for x in bulk] == [hit_key(x) for x in ref]

    def test_empty_page_and_empty_slot_list(self):
        page = build_page([])
        assert len(page) == 0
        assert page.env_summary()[4] is False
        key = PageKey(0, 0)
        entry = PlanEntry(0, None, EXTENT, None, {key: []})
        executor = RefineExecutor({})
        assert executor.refine(entry, {key: page}, exact=True) == []
        assert executor.refine_reference(entry, {key: page}, exact=True) == []

    def test_duplicate_id_within_page_keeps_first_wins_order(self):
        # cannot come from the writers (pages never span partitions), but a
        # hand-built plan must still match the scalar first-encounter rule
        a = Point(10.0, 10.0, userdata="first")
        b = Point(20.0, 20.0, userdata="second")
        page = build_page([(5, a.envelope, a), (5, b.envelope, b)])
        key = PageKey(0, 0)
        entry = PlanEntry(0, None, EXTENT, None, {key: [0, 1]})
        executor = RefineExecutor({})
        bulk = executor.refine(entry, {key: page}, exact=True)
        ref = executor.refine_reference(entry, {key: page}, exact=True)
        assert [hit_key(x) for x in bulk] == [hit_key(x) for x in ref]
        assert len(bulk) == 1 and bulk[0].geometry.userdata == "first"

    def test_cross_page_replica_dedup_newest_generation_wins(self):
        old = Point(30.0, 30.0, userdata="old")
        new = Point(31.0, 31.0, userdata="new")
        base = build_page([(9, old.envelope, old)], page_id=0)
        delta = build_page([(9, new.envelope, new)], page_id=0)
        k0, k1 = PageKey(0, 0), PageKey(1, 0)
        entry = PlanEntry(0, None, EXTENT, None, {k0: [0], k1: [0]})
        executor = RefineExecutor({})
        pages = {k0: base, k1: delta}
        bulk = executor.refine(entry, pages, exact=True)
        ref = executor.refine_reference(entry, pages, exact=True)
        assert [hit_key(x) for x in bulk] == [hit_key(x) for x in ref]
        assert len(bulk) == 1 and bulk[0].geometry.userdata == "new"

    def test_tombstone_shadow_matches_reference(self):
        g = Point(40.0, 40.0, userdata="dead")
        live = Point(41.0, 41.0, userdata="live")
        page = build_page([(3, g.envelope, g), (4, live.envelope, live)])
        key = PageKey(0, 0)
        entry = PlanEntry(0, None, EXTENT, None, {key: [0, 1]})
        executor = RefineExecutor({}, tombstone_gen={3: 2})
        bulk = executor.refine(entry, {key: page}, exact=True)
        ref = executor.refine_reference(entry, {key: page}, exact=True)
        assert [hit_key(x) for x in bulk] == [hit_key(x) for x in ref]
        assert [x.record_id for x in bulk] == [4]


# --------------------------------------------------------------------------- #
# cross-shard replicas at 1/2/4 ranks
# --------------------------------------------------------------------------- #
class TestShardedEquality:
    @pytest.mark.parametrize("nprocs", [1, 2, 4])
    def test_engine_equals_sharded_equals_brute_force(
        self, fs, geoms, v2_name, sharded_name, nprocs
    ):
        envs = probe_windows(8, seed=21)
        queries = [(i, env) for i, env in enumerate(envs)]
        visible = {i: g for i, g in enumerate(geoms)}

        single = SpatialDataStore.open(fs, v2_name, cache_pages=1024)
        single_ids = [
            sorted(h.record_id for h in hits)
            for hits in single.range_query_batch(queries)
        ]

        def prog(comm):
            with DistributedStoreServer.open(comm, fs, sharded_name) as server:
                return server.range_query_batch(
                    queries if comm.rank == 0 else None, exact=True
                )

        hits = mpisim.run_spmd(prog, nprocs).values[0]
        sharded_ids = [[] for _ in queries]
        for h in hits:
            sharded_ids[h.query_id].append(h.record_id)
        sharded_ids = [sorted(ids) for ids in sharded_ids]

        brute = [brute_force(visible, env) for env in envs]
        assert single_ids == brute
        assert sharded_ids == brute


# --------------------------------------------------------------------------- #
# zero-copy lazy rect hits
# --------------------------------------------------------------------------- #
class TestLazyZeroCopy:
    def test_lazy_hits_materialize_to_eager_results(self, fs, v2_name):
        store = SpatialDataStore.open(fs, v2_name, cache_pages=1024)
        for window in probe_windows(10, seed=31):
            eager = store.range_query(window)
            lazy = store.range_query(window, lazy=True)
            assert [hit_key(h) for h in lazy] == [hit_key(h) for h in eager]

    def test_fully_contained_window_decodes_nothing_until_read(self, fs, v2_name):
        store = SpatialDataStore.open(fs, v2_name, cache_pages=1024)
        hits = store.range_query(EXTENT, lazy=True)
        assert hits and all(isinstance(h.geometry, RecordView) for h in hits)
        assert store.stats.records_decoded == 0
        view = hits[0].geometry
        assert not view.is_materialized
        assert isinstance(view.body, memoryview) and len(view.body) > 0
        geom = view.geometry  # first read pays (and memoises) the decode
        assert geom.envelope.intersects(EXTENT)
        assert view.is_materialized
        assert store.stats.records_decoded == 1
        _ = view.geometry
        assert store.stats.records_decoded == 1  # memoised

    def test_lazy_inexact_query_is_all_views(self, fs, v2_name):
        store = SpatialDataStore.open(fs, v2_name, cache_pages=1024)
        window = Envelope(20.0, 20.0, 60.0, 60.0)
        hits = store.range_query(window, exact=False, lazy=True)
        assert hits and all(isinstance(h.geometry, RecordView) for h in hits)
        assert store.stats.records_decoded == 0
        eager = store.range_query(window, exact=False)
        assert [hit_key(h) for h in hits] == [hit_key(h) for h in eager]

    def test_lazy_partial_containment_mixes_views_and_geometries(self, fs, v2_name):
        store = SpatialDataStore.open(fs, v2_name, cache_pages=1024)
        window = Envelope(13.0, 17.0, 61.0, 58.0)
        hits = store.range_query(window, lazy=True)
        kinds = {isinstance(h.geometry, RecordView) for h in hits}
        # a window cutting through page extents produces both kinds
        assert kinds == {True, False}

    def test_v1_lazy_rides_the_upgraded_column(self, fs, v1_name):
        store = SpatialDataStore.open(fs, v1_name, cache_pages=1024)
        eager = store.range_query(EXTENT)
        lazy = SpatialDataStore.open(fs, v1_name, cache_pages=1024).range_query(
            EXTENT, lazy=True
        )
        assert any(isinstance(h.geometry, RecordView) for h in lazy)
        assert [hit_key(h) for h in lazy] == [hit_key(h) for h in eager]


# --------------------------------------------------------------------------- #
# counters and EXPLAIN selectivity
# --------------------------------------------------------------------------- #
class TestCountersAndExplain:
    def test_slots_scanned_and_batches_move(self, fs, v2_name):
        store = SpatialDataStore.open(fs, v2_name, cache_pages=1024)
        assert store.stats.slots_scanned == 0
        assert store.stats.bulk_filter_batches == 0
        store.range_query(Envelope(10.0, 10.0, 50.0, 50.0))
        assert store.stats.slots_scanned > 0
        assert store.stats.bulk_filter_batches > 0
        assert store.stats.slots_scanned >= store.stats.bulk_filter_batches

    def test_explain_surfaces_selectivity(self, fs, gen_store):
        name, _ = gen_store
        store = SpatialDataStore.open(fs, name, cache_pages=1024)
        report = store.explain(Envelope(5.0, 5.0, 80.0, 80.0))
        refine = report.refine
        assert refine["slots_scanned"] > 0
        assert refine["bulk_filter_batches"] > 0
        # EXPLAIN's refine numbers are stats deltas by construction
        assert refine["slots_scanned"] == report.stats_delta["slots_scanned"]
        assert (
            refine["bulk_filter_batches"]
            == report.stats_delta["bulk_filter_batches"]
        )
        # selectivity = survivors / slots_scanned, and survivors are exactly
        # the decoded records on the eager path: zero per-slot work hides
        survivors = (
            refine["slots_scanned"]
            - refine["replicas_skipped"]
            - refine["tombstone_drops"]
        )
        assert 0.0 < refine["filter_selectivity"] <= 1.0
        assert refine["filter_selectivity"] == survivors / refine["slots_scanned"]
        assert survivors == refine["records_decoded"]
        assert "selectivity" in report.render()

    @pytest.mark.parametrize("nprocs", [2])
    def test_distributed_explain_carries_selectivity(self, fs, sharded_name, nprocs):
        queries = [(i, w) for i, w in enumerate(probe_windows(4, seed=41))]

        def prog(comm):
            with DistributedStoreServer.open(comm, fs, sharded_name) as server:
                report = server.explain_batch(
                    queries if comm.rank == 0 else None
                )
                return report.as_dict() if report is not None else None

        report = mpisim.run_spmd(prog, nprocs).values[0]
        assert report["stats_delta"]["slots_scanned"] > 0
        assert report["stats_delta"]["bulk_filter_batches"] > 0
        shard_scanned = sum(
            info.get("slots_scanned", 0) for info in report["shards"].values()
        )
        assert shard_scanned == report["stats_delta"]["slots_scanned"]


# --------------------------------------------------------------------------- #
# scan() and degraded accounting (bulk filter must not hide failed pages)
# --------------------------------------------------------------------------- #
class TestScanAndDegradedAccounting:
    def test_scan_equals_visible_records(self, fs, gen_store):
        name, visible = gen_store
        store = SpatialDataStore.open(fs, name, cache_pages=1024)
        scanned = dict(store.scan())
        assert set(scanned) == set(visible)
        for rid, geom in scanned.items():
            assert wkb.dumps(geom) == wkb.dumps(visible[rid])
            assert geom.userdata == visible[rid].userdata

    def test_scan_bounded_runs_with_tiny_cache(self, fs, gen_store):
        name, visible = gen_store
        store = SpatialDataStore.open(fs, name, cache_pages=4,
                                      admission="no_scan")
        scanned = dict(store.scan())
        assert set(scanned) == set(visible)

    def test_scan_raises_on_quarantined_page(self, fs, geoms):
        # a checksum-failed page must abort the scan, not read as an empty
        # (zero-survivor) bulk batch
        bulk_load(fs, "hot_scan_bad", geoms[:120], num_partitions=4,
                  page_size=1024)
        with SpatialDataStore.open(fs, "hot_scan_bad", cache_pages=64) as store:
            from tests.store.test_faults import flip_page_byte

            flip_page_byte(fs, store)
        with SpatialDataStore.open(fs, "hot_scan_bad", cache_pages=64) as store:
            with pytest.raises(PageChecksumError):
                dict(store.scan())
            # and again once quarantined: still an error, never silence
            with pytest.raises(PageChecksumError, match="quarantined"):
                dict(store.scan())

    def test_degraded_outcome_excludes_failed_pages_from_slots_scanned(
        self, fs, geoms
    ):
        bulk_load(fs, "hot_degraded", geoms[:150], num_partitions=4,
                  page_size=1024)
        window = EXTENT
        with SpatialDataStore.open(fs, "hot_degraded", cache_pages=256) as store:
            plan = store.engine.planner.plan([(0, window)])
            clean_slots = sum(
                len(slots)
                for entry in plan.entries
                for slots in entry.by_page.values()
            )
            from tests.store.test_faults import flip_page_byte

            bad_key = flip_page_byte(fs, store)
            bad_slots = sum(
                len(entry.by_page.get(bad_key, ())) for entry in plan.entries
            )
            assert bad_slots > 0

        with SpatialDataStore.open(fs, "hot_degraded", cache_pages=256) as store:
            before = store.stats.slots_scanned
            outcome = store.query_outcome([(0, window)], partial_ok=True)
            assert not outcome.complete
            assert [key for key, _ in outcome.failed_pages] == [bad_key]
            assert outcome.incomplete_queries == [0]
            # the bulk filter scanned exactly the available pages' slots —
            # the failed page is accounted as failed, not as zero survivors
            assert store.stats.slots_scanned - before == clean_slots - bad_slots

    def test_budget_zero_charges_no_bulk_batches(self, fs, geoms):
        bulk_load(fs, "hot_budget", geoms[:80], num_partitions=4, page_size=1024)
        with SpatialDataStore.open(fs, "hot_budget", cache_pages=64) as store:
            outcome = store.query_outcome(
                [(0, EXTENT)], partial_ok=True, budget=0.0
            )
            assert not outcome.complete
            assert store.stats.slots_scanned == 0
            assert store.stats.bulk_filter_batches == 0
