"""Regressions for the dynamic lockstep verifier.

The headline property (the ISSUE's acceptance criterion): a deliberately
rank-divergent collective program under ``enable_collective_check()`` fails
*immediately* with a ``CollectiveMismatchError`` naming the mismatched
callsites — at 2 and 4 ranks — where the unarmed run sits in the mixed
rendezvous until the mpisim deadlock timeout kills it.
"""

import pytest

import repro.mpisim as mpisim
from repro.analysis import (
    CollectiveMismatchError,
    collective_check,
    collective_check_default,
    set_collective_check_default,
)
from repro.mpisim import ops


def divergent_ops(comm):
    """Rank 0 slips an extra barrier in before everyone's bcast."""
    if comm.rank == 0:
        comm.barrier()  # spmd: ignore[SPMD001] deliberate divergence under test
    return comm.bcast("payload" if comm.rank == 0 else None, root=0)


def divergent_root(comm):
    half = 0 if comm.rank < comm.size // 2 else 1
    return comm.bcast("payload", root=half)  # spmd: ignore[SPMD003] deliberate


def lockstep(comm):
    comm.barrier()
    total = comm.allreduce(comm.rank, ops.SUM)
    return comm.allgather(total)


@pytest.mark.parametrize("nprocs", [2, 4])
class TestDivergenceDetection:
    def test_armed_raises_naming_both_callsites(self, nprocs):
        with collective_check():
            with pytest.raises(CollectiveMismatchError) as excinfo:
                mpisim.run_spmd(divergent_ops, nprocs)
        message = str(excinfo.value)
        # both divergent ops and their callsites are named, per rank
        assert "barrier()" in message and "bcast()" in message
        assert message.count("test_runtime_check.py") >= 2
        assert "rank 0" in message and "rank 1" in message

    def test_unarmed_hits_the_deadlock_timeout(self, nprocs):
        assert not collective_check_default()
        with pytest.raises(mpisim.MPIError, match="deadlock"):
            # rank 0's lone barrier rendezvouses with the others' bcast
            # (the engine can't tell ops apart), then its own bcast waits
            # for peers that already returned — the classic hang, cut
            # short by a tiny timeout instead of the default 300s
            mpisim.run_spmd(divergent_ops, nprocs, timeout=2)

    def test_root_disagreement_is_reported(self, nprocs):
        with collective_check():
            with pytest.raises(CollectiveMismatchError) as excinfo:
                mpisim.run_spmd(divergent_root, nprocs)
        message = str(excinfo.value)
        assert "root=0" in message and "root=1" in message

    def test_lockstep_program_is_untouched(self, nprocs):
        with collective_check():
            armed = mpisim.run_spmd(lockstep, nprocs)
        unarmed = mpisim.run_spmd(lockstep, nprocs)
        assert armed.values == unarmed.values


class TestArming:
    def test_default_is_off(self):
        assert not collective_check_default()

        def prog(comm):
            return comm.collective_check_enabled

        assert mpisim.run_spmd(prog, 2).values == [False, False]

    def test_context_manager_arms_and_restores(self):
        def prog(comm):
            return comm.collective_check_enabled

        with collective_check():
            assert collective_check_default()
            assert mpisim.run_spmd(prog, 2).values == [True, True]
        assert not collective_check_default()

    def test_set_default_returns_previous(self):
        previous = set_collective_check_default(True)
        try:
            assert previous is False
            assert set_collective_check_default(True) is True
        finally:
            set_collective_check_default(previous)

    def test_per_communicator_arming(self):
        def prog(comm):
            comm.enable_collective_check()
            if comm.rank == 0:
                comm.barrier()  # spmd: ignore[SPMD001] deliberate divergence
            comm.bcast(None, root=0)

        with pytest.raises(CollectiveMismatchError):
            mpisim.run_spmd(prog, 2)

    def test_partial_arming_is_itself_a_mismatch(self):
        def prog(comm):
            if comm.rank == 0:
                comm.enable_collective_check()
            comm.barrier()

        with pytest.raises(CollectiveMismatchError, match="not armed"):
            mpisim.run_spmd(prog, 2)

    def test_split_and_dup_inherit_arming(self):
        def prog(comm):
            comm.enable_collective_check()
            sub = comm.split(comm.rank % 2)
            dup = comm.dup()
            return sub.collective_check_enabled, dup.collective_check_enabled

        assert mpisim.run_spmd(prog, 4).values == [(True, True)] * 4

    def test_extra_collective_is_an_exit_imbalance(self):
        # an extra collective of the SAME op is invisible to the piggyback
        # compare (rank 0's g-th call always meets rank 1's g-th call), but
        # it leaves rank 0 waiting in a final rendezvous after rank 1 has
        # returned — the armed check turns that tail-end deadlock into an
        # immediate mismatch error naming the stuck callsite
        def prog(comm):
            if comm.rank == 0:
                comm.allgather(0)  # spmd: ignore[SPMD001] deliberate divergence
            comm.allgather(1)
            comm.allgather(2)

        with collective_check():
            with pytest.raises(
                CollectiveMismatchError, match="already returned"
            ) as excinfo:
                mpisim.run_spmd(prog, 2)
        assert "allgather()" in str(excinfo.value)

    def test_unarmed_extra_collective_deadlocks(self):
        def prog(comm):
            if comm.rank == 0:
                comm.allgather(0)  # spmd: ignore[SPMD001] deliberate divergence
            comm.allgather(1)

        with pytest.raises(mpisim.MPIError, match="deadlock"):
            mpisim.run_spmd(prog, 2, timeout=2)


class TestStrictMode:
    def test_branch_sited_collectives_pass_non_strict(self):
        # the sharded-server pattern: the *same* scatter issued from the
        # root branch and the worker branch of a rank-conditional — a
        # legitimate matched pair that non-strict mode must accept
        def prog(comm):
            comm.enable_collective_check()
            if comm.rank == 0:
                value = comm.scatter(list(range(comm.size)), root=0)
            else:
                value = comm.scatter(None, root=0)
            return value

        assert mpisim.run_spmd(prog, 4).values == [0, 1, 2, 3]

    def test_strict_mode_flags_callsite_divergence(self):
        def prog(comm):
            comm.enable_collective_check(strict=True)
            if comm.rank == 0:
                value = comm.scatter(list(range(comm.size)), root=0)
            else:
                value = comm.scatter(None, root=0)
            return value

        with pytest.raises(CollectiveMismatchError):
            mpisim.run_spmd(prog, 4)

    def test_strict_mode_accepts_single_sited_collectives(self):
        def prog(comm):
            comm.enable_collective_check(strict=True)
            return comm.allreduce(comm.rank, ops.SUM)

        assert mpisim.run_spmd(prog, 4).values == [6, 6, 6, 6]


class TestErrorShape:
    def test_error_is_an_mpi_error(self):
        assert issubclass(CollectiveMismatchError, mpisim.MPIError)

    def test_importable_from_both_homes(self):
        from repro.analysis.runtime import (
            CollectiveMismatchError as from_analysis,
        )
        from repro.mpisim.errors import (
            CollectiveMismatchError as from_mpisim,
        )

        assert from_analysis is from_mpisim
