"""Synthetic dataset generator tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import WKTParser
from repro.datasets import (
    DATASETS,
    PAPER_TABLE3,
    SyntheticConfig,
    dataset_path,
    generate_dataset,
    generate_mixed_records,
    generate_point_records,
    generate_polygon_records,
    generate_polyline_records,
    random_envelopes,
    read_mbr_records,
    read_point_records,
    write_mbr_file,
    write_point_file,
)
from repro.geometry import Envelope, LineString, Point, Polygon, wkt
from repro.pfs import LustreFilesystem


@pytest.fixture
def lustre(tmp_path):
    return LustreFilesystem(tmp_path / "fs")


class TestRecordGenerators:
    def test_polygon_records_parse(self):
        parser = WKTParser()
        records = list(generate_polygon_records(50))
        geoms = parser.parse_many(records)
        assert len(geoms) == 50
        assert all(isinstance(g, Polygon) for g in geoms)
        assert all(g.area > 0 for g in geoms)
        # attributes preserved as userdata
        assert all(g.userdata and "id=" in g.userdata for g in geoms)

    def test_polyline_records_parse(self):
        geoms = WKTParser().parse_many(generate_polyline_records(30))
        assert len(geoms) == 30
        assert all(isinstance(g, LineString) for g in geoms)

    def test_point_records_parse(self):
        geoms = WKTParser().parse_many(generate_point_records(30))
        assert all(isinstance(g, Point) for g in geoms)

    def test_mixed_records_contain_multiple_types(self):
        geoms = WKTParser().parse_many(generate_mixed_records(120))
        types = {g.geom_type for g in geoms}
        assert {"Polygon", "LineString", "Point"} <= types

    def test_determinism_with_seed(self):
        cfg = SyntheticConfig(seed=77)
        a = list(generate_polygon_records(20, cfg))
        b = list(generate_polygon_records(20, SyntheticConfig(seed=77)))
        c = list(generate_polygon_records(20, SyntheticConfig(seed=78)))
        assert a == b
        assert a != c

    def test_vertex_count_skew(self):
        cfg = SyntheticConfig(seed=3, vertex_sigma=1.2, mean_vertices=10)
        geoms = WKTParser().parse_many(generate_polygon_records(300, cfg))
        counts = sorted(g.num_points for g in geoms)
        # heavy-tailed: the largest polygon has far more vertices than the median
        assert counts[-1] > counts[len(counts) // 2] * 4

    def test_records_within_extent(self):
        cfg = SyntheticConfig(seed=5)
        extent = cfg.extent.buffer(5.0)  # generators may jitter slightly past the edge
        for record in generate_point_records(100, cfg, with_attributes=False):
            g = wkt.loads(record)
            assert extent.contains(g.envelope)

    @given(st.integers(min_value=1, max_value=40))
    @settings(max_examples=10, deadline=None)
    def test_record_count_property(self, n):
        assert len(list(generate_polygon_records(n))) == n
        assert len(list(generate_point_records(n))) == n


class TestNamedDatasets:
    def test_registry_matches_table3(self):
        assert set(PAPER_TABLE3) == set(DATASETS)
        assert DATASETS["cemetery"].paper_size == "56 MB"
        assert DATASETS["road_network"].shape == "line"
        assert DATASETS["all_nodes"].base_count > DATASETS["cemetery"].base_count

    def test_generate_dataset_and_parse(self, lustre):
        path = generate_dataset(lustre, "cemetery", scale=0.1)
        assert path == dataset_path("cemetery")
        with lustre.open(path) as fh:
            data = fh.pread(0, fh.size)
        geoms = WKTParser().parse_buffer(data)
        assert len(geoms) == 40

    def test_generate_dataset_custom_path(self, lustre):
        path = generate_dataset(lustre, "lakes", scale=0.02, path="custom/lakes_small.wkt")
        assert lustre.exists("custom/lakes_small.wkt")
        assert path == "custom/lakes_small.wkt"

    def test_unknown_dataset(self, lustre):
        with pytest.raises(KeyError):
            generate_dataset(lustre, "oceans")

    def test_minimum_count(self, lustre):
        path = generate_dataset(lustre, "cemetery", scale=0.0001)
        geoms = WKTParser().parse_buffer(lustre.open(path).pread(0, 10**7))
        assert len(geoms) == 10


class TestBinaryDatasets:
    def test_mbr_roundtrip_float32(self, lustre):
        envs = random_envelopes(25, seed=1)
        n = write_mbr_file(lustre, "m.bin", envs, precision="float32")
        assert n == 25
        data = lustre.open("m.bin").pread(0, 10**6)
        out = read_mbr_records(data, precision="float32")
        assert len(out) == 25
        for a, b in zip(envs, out):
            assert a.minx == pytest.approx(b.minx, rel=1e-6)

    def test_mbr_roundtrip_float64(self, lustre):
        envs = random_envelopes(10, seed=2)
        write_mbr_file(lustre, "m64.bin", envs, precision="float64")
        out = read_mbr_records(lustre.open("m64.bin").pread(0, 10**6), precision="float64")
        assert out == envs

    def test_point_roundtrip(self, lustre):
        pts = [(1.0, 2.0), (-3.5, 7.25), (0.0, 0.0)]
        write_point_file(lustre, "p.bin", pts)
        arr = read_point_records(lustre.open("p.bin").pread(0, 10**6))
        assert arr.shape == (3, 2)
        assert arr[1, 1] == 7.25

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            read_mbr_records(b"\x00" * 10)
        with pytest.raises(ValueError):
            read_point_records(b"\x00" * 10)

    def test_random_envelopes_within_extent(self):
        extent = Envelope(0, 0, 10, 10)
        for env in random_envelopes(50, extent=extent, seed=9):
            assert extent.contains(env)
