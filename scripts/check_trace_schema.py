#!/usr/bin/env python
"""Validate exported trace artifacts against the ``repro.obs`` schema.

Thin launcher for :mod:`repro.obs.schema_check` (the importable, unit-tested
implementation); kept runnable from a bare checkout — no installed package,
no PYTHONPATH — because CI and the benchmarks invoke it as a subprocess.
Run ``--help`` for the format and exit-status contract.
"""

import pathlib
import sys

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.obs.schema_check import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
