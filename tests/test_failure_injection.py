"""Failure-injection tests: the SPMD pipeline must fail loudly (not hang or
silently corrupt data) when components misbehave."""

import pytest

import time

from repro import mpisim
from repro.core import (
    GridPartitionConfig,
    PartitionConfig,
    SpatialJoin,
    VectorIO,
    WKTParser,
)
from repro.datasets import generate_dataset, random_envelopes
from repro.faults import FaultRule, FaultyFilesystem
from repro.geometry import Envelope, Polygon
from repro.mpisim import MPIAbortError, ops
from repro.pfs import LustreFilesystem
from repro.store import (
    DistributedStoreServer,
    QueryResult,
    ShardedStoreWriter,
    StoreError,
    sharded_bulk_load,
)


@pytest.fixture
def lustre(tmp_path):
    fs = LustreFilesystem(tmp_path / "lustre")
    generate_dataset(fs, "cemetery", scale=0.1)
    return fs


class TestMissingAndCorruptInputs:
    def test_missing_file_aborts_all_ranks(self, lustre):
        def prog(comm):
            vio = VectorIO(lustre)
            return vio.read_geometries(comm, "datasets/does_not_exist.wkt")

        with pytest.raises(FileNotFoundError):
            mpisim.run_spmd(prog, 4)

    def test_corrupt_records_are_skipped_not_fatal(self, lustre):
        # inject garbage lines into an otherwise valid dataset
        with lustre.open("datasets/cemetery.wkt", mode="r+") as fh:
            size = fh.size
            fh.pwrite(size, b"THIS IS NOT WKT\nPOLYGON ((broken\n")

        def prog(comm):
            report = VectorIO(lustre).read_geometries(comm, "datasets/cemetery.wkt")
            return comm.allreduce(report.num_geometries, ops.SUM)

        res = mpisim.run_spmd(prog, 2)
        assert res.values[0] == 40  # the 40 valid records survive

    def test_strict_parser_propagates_failure(self, lustre):
        with lustre.open("datasets/cemetery.wkt", mode="r+") as fh:
            fh.pwrite(fh.size, b"GARBAGE RECORD\n")

        def prog(comm):
            vio = VectorIO(lustre)
            return vio.read_geometries(comm, "datasets/cemetery.wkt", WKTParser(skip_invalid=False))

        with pytest.raises(Exception):
            mpisim.run_spmd(prog, 2)


class TestRankFailures:
    def test_rank_crash_mid_join_propagates(self, lustre):
        generate_dataset(lustre, "lakes", scale=0.02)

        class FaultyJoin(SpatialJoin):
            def refine(self, cell, left, right):
                raise RuntimeError("refine blew up")

        def prog(comm):
            join = FaultyJoin(lustre, grid_config=GridPartitionConfig(num_cells=4))
            return join.run(comm, "datasets/lakes.wkt", "datasets/cemetery.wkt")

        with pytest.raises(RuntimeError, match="refine blew up"):
            mpisim.run_spmd(prog, 3)

    def test_single_rank_death_does_not_hang_collectives(self):
        def prog(comm):
            if comm.rank == comm.size - 1:
                # spmd: ignore[SPMD005] deliberate divergence: exercises abort waking blocked peers
                raise ValueError("dead rank")
            # all other ranks are stuck in a collective until the abort fires
            return comm.allreduce(1, ops.SUM)

        with pytest.raises(ValueError, match="dead rank"):
            mpisim.run_spmd(prog, 6)

    def test_mismatched_block_configuration_is_detected(self, lustre):
        # a block size smaller than the largest record must fail loudly
        def prog(comm):
            vio = VectorIO(lustre, PartitionConfig(block_size=16))
            return vio.read_geometries(comm, "datasets/cemetery.wkt")

        with pytest.raises(mpisim.MPIError):
            mpisim.run_spmd(prog, 2)


class TestCorruptShardServing:
    """Distributed serving must convert shard-file corruption into a clean
    ``StoreError`` naming the shard — never a raw struct/pickle exception
    escaping mid-collective."""

    NAME = "corrupt"

    @pytest.fixture
    def sharded(self, tmp_path):
        fs = LustreFilesystem(tmp_path / "lustre")
        geoms = [
            Polygon.from_envelope(env, userdata=i)
            for i, env in enumerate(
                random_envelopes(60, extent=Envelope(0.0, 0.0, 100.0, 100.0),
                                 max_size_fraction=0.1, seed=6)
            )
        ]
        result = sharded_bulk_load(fs, self.NAME, geoms, num_shards=4,
                                   num_partitions=16, page_size=512)
        return fs, result

    def _serve(self, fs, nprocs=4):
        def prog(comm):
            with DistributedStoreServer.open(comm, fs, self.NAME) as server:
                window = Envelope(0.0, 0.0, 100.0, 100.0)
                return server.range_query_batch(
                    [(0, window)] if comm.rank == 0 else None
                )

        return mpisim.run_spmd(prog, nprocs)

    def test_corrupted_shard_data_header_names_the_shard(self, sharded):
        fs, result = sharded
        victim = result.manifest.shards[1]
        with fs.open(f"stores/{victim.store}/data.bin", mode="r+") as fh:
            fh.pwrite(0, b"GARBAGE!" * 8)  # clobber magic + header fields

        with pytest.raises(StoreError, match=r"shard 1") as excinfo:
            self._serve(fs)
        assert victim.store in str(excinfo.value)

    def test_stale_shard_manifest_names_the_shard(self, sharded):
        # a manifest that disagrees with its container raises inside the
        # shard store's own open(), with the shard's store name embedded in
        # the message — the guard must still attribute it to the shard
        # (regression: a substring heuristic once let this escape unwrapped)
        import json

        from repro.store import ShardError

        fs, result = sharded
        victim = result.manifest.shards[1]
        path = f"stores/{victim.store}/manifest.json"
        with fs.open(path) as fh:
            doc = json.loads(fh.pread(0, fh.size).decode("utf-8"))
        doc["num_pages"] += 1
        fs.create_file(path, json.dumps(doc).encode("utf-8"))

        with pytest.raises(StoreError, match=r"shard 1 ") as excinfo:
            self._serve(fs)
        assert isinstance(excinfo.value, ShardError)
        assert excinfo.value.shard_id == 1
        assert excinfo.value.store == victim.store

    def test_truncated_shard_index_names_the_shard(self, sharded):
        fs, result = sharded
        victim = result.manifest.shards[2]
        path = f"stores/{victim.store}/index.bin"
        with fs.open(path) as fh:
            raw = fh.pread(0, fh.size)
        fs.create_file(path, raw[: max(1, len(raw) // 2)])

        with pytest.raises(StoreError, match=r"shard 2") as excinfo:
            self._serve(fs)
        assert victim.store in str(excinfo.value)

    def test_truncated_shard_data_pages_fail_cleanly_mid_query(self, sharded):
        fs, result = sharded
        # pick a shard that actually holds pages, cut its data file just
        # after the header so page reads (not the open) hit the truncation
        victim = next(s for s in result.manifest.shards if s.num_pages > 0)
        path = f"stores/{victim.store}/data.bin"
        with fs.open(path) as fh:
            raw = fh.pread(0, fh.size)
        # keep header + page directory (at the tail we must preserve the
        # directory offset region read at open, so rebuild: header + zeroed
        # payload + directory) — zero the payload bytes instead of cutting
        from repro.store.format import HEADER_SIZE, unpack_header

        header = unpack_header(raw[:HEADER_SIZE])
        corrupted = (
            raw[:HEADER_SIZE]
            + b"\x00" * (header.dir_offset - HEADER_SIZE)
            + raw[header.dir_offset:]
        )
        fs.create_file(path, corrupted)

        with pytest.raises(StoreError, match=rf"shard {victim.shard_id}"):
            self._serve(fs)

    def test_intact_store_still_serves_after_failure_tests(self, sharded):
        fs, result = sharded
        res = self._serve(fs)
        assert sorted(h.record_id for h in res.values[0]) == list(
            range(result.num_records)
        )


class TestInjectedFaultServing:
    """End-to-end fault drills over a replicated sharded store: seeded
    transient read errors and silent record-body bit-flips injected under
    distributed serving must be absorbed — retried, caught by the page
    checksums, quarantined, recovered from read replicas — without changing
    query results."""

    NAME = "drill"
    WINDOW = Envelope(0.0, 0.0, 100.0, 100.0)

    @pytest.fixture
    def replicated(self, tmp_path):
        fs = LustreFilesystem(tmp_path / "lustre")
        geoms = [
            Polygon.from_envelope(env, userdata=i)
            for i, env in enumerate(
                random_envelopes(60, extent=self.WINDOW,
                                 max_size_fraction=0.1, seed=6)
            )
        ]
        result = ShardedStoreWriter(
            fs, self.NAME, num_shards=4, num_partitions=16, page_size=512,
            read_replicas=1,
        ).load(geoms)
        return fs, result

    def _serve(self, fs, nprocs=4, faulty=None, allow_degraded=False,
               partial_ok=False):
        """Serve the full window once; with *faulty*, faults are armed for
        the query phase only (rank 0 flips the shared switch between
        barriers) so injection hits the serving path, not the opens."""

        def prog(comm):
            with DistributedStoreServer.open(
                comm, faulty if faulty is not None else fs, self.NAME,
                allow_degraded=allow_degraded,
            ) as server:
                comm.barrier()
                if faulty is not None and comm.rank == 0:
                    faulty.arm()
                comm.barrier()
                res = server.range_query_batch(
                    [(0, self.WINDOW)] if comm.rank == 0 else None,
                    partial_ok=partial_ok,
                )
                comm.barrier()
                if faulty is not None and comm.rank == 0:
                    faulty.disarm()
                comm.barrier()
                return res, server.aggregate_metrics()

        if faulty is not None:
            faulty.disarm()
        return mpisim.run_spmd(prog, nprocs).values[0]

    @staticmethod
    def _ids(hits):
        return sorted((h.record_id, h.shard_id) for h in hits)

    @pytest.mark.parametrize("nprocs", (1, 2, 4))
    def test_bitflips_detected_quarantined_and_recovered(self, replicated, nprocs):
        fs, result = replicated
        clean, _ = self._serve(fs, nprocs=nprocs)
        # flip one bit in every record-body read of every *primary* shard
        # container (the ???? pattern leaves the replica copies clean)
        faulty = FaultyFilesystem(fs, rules=[FaultRule(
            path_pattern=f"stores/{self.NAME}/shard-????/data.bin",
            bitflip_rate=1.0,
        )], seed=11)

        hits, metrics = self._serve(fs, nprocs=nprocs, faulty=faulty)
        assert self._ids(hits) == self._ids(clean)
        counters = metrics["counters"]
        assert counters["store.checksum_failures"] >= 1
        assert counters["server.failovers"] >= 1
        assert faulty.stats.bitflips >= 1
        assert not faulty.armed  # the drill disarmed after the query phase

    def test_ten_percent_read_faults_match_fault_free_at_4_ranks(self, replicated):
        fs, result = replicated
        clean, _ = self._serve(fs, nprocs=4)
        faulty = FaultyFilesystem(fs, rules=[FaultRule(
            path_pattern=f"stores/{self.NAME}/*",
            read_error_rate=0.1,
        )], seed=13)

        hits, metrics = self._serve(fs, nprocs=4, faulty=faulty)
        assert self._ids(hits) == self._ids(clean)
        assert faulty.stats.read_errors >= 1
        assert metrics["counters"]["store.retries"] >= 1

    def test_injected_dead_shard_partial_ok_reports_exact_partitions(self, replicated):
        fs, result = replicated
        victim = next(s for s in result.manifest.shards if s.num_pages > 0)
        # every read of the victim's primary AND replica containers fails,
        # so retry, then failover, then degraded mode all get exercised
        faulty = FaultyFilesystem(fs, rules=[FaultRule(
            path_pattern=f"stores/{victim.store}*/data.bin",
            read_error_rate=1.0,
        )], seed=17)

        res, metrics = self._serve(
            fs, nprocs=4, faulty=faulty, allow_degraded=True, partial_ok=True
        )
        assert isinstance(res, QueryResult)
        assert not res.complete
        assert res.missing_shards == [victim.shard_id]
        assert res.missing_partitions == sorted(victim.partition_ids)
        assert metrics["counters"]["server.degraded_queries"] == 1
        assert {h.shard_id for h in res}.isdisjoint({victim.shard_id})
        assert self._ids(res.hits)  # the surviving shards still answered


class TestTimeoutDiagnosis:
    """On timeout the launcher must say whether the live ranks are deadlocked
    in communication or merely still computing — the two need opposite
    fixes."""

    def test_deadlock_names_blocked_ranks(self):
        def prog(comm):
            # circular wait: each rank receives from a peer that never sends
            return comm.recv(source=(comm.rank + 1) % comm.size)

        with pytest.raises(mpisim.MPIError, match="deadlock") as excinfo:
            mpisim.run_spmd(prog, 2, timeout=0.75)
        msg = str(excinfo.value)
        assert "rank 0 in recv" in msg
        assert "rank 1 in recv" in msg

    def test_long_computation_is_not_reported_as_deadlock(self):
        def prog(comm):
            if comm.rank == 1:
                deadline = time.monotonic() + 1.5
                while time.monotonic() < deadline:
                    time.sleep(0.05)
            return comm.rank

        with pytest.raises(mpisim.MPIError, match="still running") as excinfo:
            mpisim.run_spmd(prog, 2, timeout=0.5)
        msg = str(excinfo.value)
        assert "rank(s) [1]" in msg
        assert "all live ranks blocked" not in msg
