"""`SpatialDataStore` — open once, serve range queries and joins forever.

The serving-side counterpart of the one-shot pipeline in ``repro.core``:
where `SpatialComputation.run` re-reads, re-parses, re-partitions and
re-indexes the raw dataset on every invocation, a store is bulk-loaded once
and every later open costs only the manifest, the page directory and the
packed index.  Queries prune partition MBRs (manifest), then page MBRs
(page directory / index), and decode **only the pages they touch**, through
an LRU page cache.

A store may carry *delta generations* stacked by incremental appends
(:mod:`repro.store.mutable`): each generation is its own container file
with its own page directory, packed index and I/O scheduler, queries plan
``(generation, page, slot)`` candidates across all of them with
newest-generation shadowing and record-id tombstones, and ``compact()``
merges them back into one container.

All filesystem traffic goes through :class:`repro.pfs.SimulatedFilesystem`,
so the store's I/O is charged by the same cost model as the rest of the
reproduction; the accumulated simulated seconds are exposed via
:meth:`SpatialDataStore.stats`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from ..geometry import Envelope, Geometry, predicates
from ..index import STRtree
from ..obs.explain import ExplainReport, build_store_explain
from ..obs.metrics import MetricsRegistry
from ..obs.trace import NULL_TRACER, Tracer
from ..pfs import FileHandle, ReadRequest, SimulatedFilesystem
from .cache import CacheStats, LRUPageCache
from .engine import BatchOutcome, StoreEngine
from .format import (
    HEADER_SIZE,
    VERSION,
    PageChecksumError,
    PageKey,
    PageMeta,
    StoreError,
    StoreFormatError,
    unpack_header,
    unpack_page_checksums,
    unpack_page_directory,
)
from .index_io import load_index
from .manifest import GenerationInfo, StoreManifest, delta_paths, store_paths
from .page import CachedPage
from .scheduler import DEFAULT_RETRY, IOScheduler, RetryPolicy, read_file_with_retry
from .writer import BulkLoadResult, bulk_load

__all__ = [
    "ADMISSION_POLICIES",
    "IO_POLICIES",
    "Generation",
    "QueryHit",
    "StoreStats",
    "SpatialDataStore",
]

Predicate = Callable[[Geometry, Geometry], bool]

#: page-cache admission policies: ``"all"`` admits every fetched page,
#: ``"no_scan"`` keeps pages touched only by full scans out of the cache so
#: a table scan cannot evict the query working set
ADMISSION_POLICIES = ("all", "no_scan")

#: I/O scheduling policies: ``"fixed"`` uses the page-size coalescing gap and
#: the constant ``prefetch_pages`` readahead; ``"cost_model"`` derives both
#: from the data file's striping layout and the filesystem's cost model (see
#: :mod:`repro.store.scheduler`)
IO_POLICIES = ("fixed", "cost_model")


@dataclass(frozen=True)
class QueryHit:
    """One record matched by a store query."""

    record_id: int
    geometry: Geometry
    partition_id: int
    page_id: int
    #: generation whose container holds the returned replica (0 = base)
    generation: int = 0


@dataclass
class Generation:
    """One generation of an open store: the base container (generation 0) or
    a delta container stacked by an incremental append.

    Each generation keeps its own page directory, packed index, file handle
    and :class:`~repro.store.scheduler.IOScheduler`, so read coalescing and
    readahead never mix byte ranges of different files; the page cache and
    the statistics are shared store-wide (pages are addressed by
    :class:`~repro.store.format.PageKey`).
    """

    gen_id: int
    pages: List[PageMeta]
    index: STRtree
    scheduler: IOScheduler
    data_path: str
    #: tight MBR of the generation's records (delta-level pruning key;
    #: the base generation prunes via the manifest's partitions instead)
    extent: Envelope
    #: page-payload layout version of the generation's container
    version: int = VERSION
    handle: Optional[FileHandle] = None


class StoreStats:
    """Cumulative serving statistics of one open store.

    ``pages_read`` counts demand-fetched pages (it equals the cache miss
    count); ``pages_prefetched`` counts pages read ahead of demand — a later
    demand for one of them is a cache hit, never a miss.  ``records_decoded``
    counts refine-phase work only: with the lazy page decode a query pays
    WKB/pickle for the slots it actually inspects, not for every record on
    every touched page.  ``read_requests`` counts coalesced read ranges
    issued to the filesystem, which is why it can be far below
    ``pages_read``.

    Since PR 6 this is a facade over ``store.*`` counters in a
    :class:`~repro.obs.metrics.MetricsRegistry` (the store's own registry,
    shared with its :class:`~repro.store.cache.CacheStats`), so store
    counters snapshot / merge / aggregate like every other metric while
    every existing ``stats.pages_read += n`` call site keeps working.
    """

    _COUNTERS = (
        "pages_read",
        "bytes_read",
        "records_decoded",
        "queries",
        #: coalesced read ranges issued (each covers one run of adjacent pages)
        "read_requests",
        #: pages read ahead of demand by the sequential readahead
        "pages_prefetched",
        #: read attempts re-issued after a transient fault (retry policy)
        "retries",
        #: pages whose payload failed its CRC32 check after every retry
        "checksum_failures",
        #: simulated seconds charged by the filesystem cost model (open + reads)
        "io_seconds",
        #: candidate slots examined by the bulk refine filter
        "slots_scanned",
        #: per-page bulk filter passes (one per (query entry, page) pair)
        "bulk_filter_batches",
    )

    __slots__ = ("registry", "cache") + tuple(f"_{n}" for n in _COUNTERS)

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        cache: Optional[CacheStats] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        for name in self._COUNTERS:
            setattr(self, f"_{name}", self.registry.counter(f"store.{name}"))
        self.cache = cache if cache is not None else CacheStats(self.registry)

    def as_dict(self) -> Dict[str, float]:
        out: Dict[str, float] = {
            name: getattr(self, name) for name in self._COUNTERS
        }
        out.update({f"cache_{k}": v for k, v in self.cache.as_dict().items()})
        return out

    def reset(self) -> None:
        """Zero every counter, cache counters included."""
        for name in self._COUNTERS:
            getattr(self, f"_{name}").value = 0
        self.cache.reset()

    def __repr__(self) -> str:  # pragma: no cover
        inner = ", ".join(f"{n}={getattr(self, n):g}" for n in self._COUNTERS)
        return f"StoreStats({inner})"


def _stats_counter_property(name: str) -> property:
    """Int-typed facade over one ``store.*`` counter (``+=`` keeps working)."""
    attr = f"_{name}"

    def fget(self: StoreStats) -> int:
        return int(getattr(self, attr).value)

    def fset(self: StoreStats, value: float) -> None:
        getattr(self, attr).value = value

    return property(fget, fset)


for _name in StoreStats._COUNTERS:
    if _name == "io_seconds":
        # the one float-valued counter: do not truncate simulated seconds
        setattr(
            StoreStats,
            _name,
            property(
                lambda self: self._io_seconds.value,
                lambda self, value: setattr(self._io_seconds, "value", value),
            ),
        )
    else:
        setattr(StoreStats, _name, _stats_counter_property(_name))
del _name


class SpatialDataStore:
    """Persistent partitioned spatial datastore (facade over the store files).

    Example::

        result = bulk_load(fs, "lakes", geometries)      # once, offline
        with SpatialDataStore.open(fs, "lakes") as store:  # every serving run
            hits = store.range_query(Envelope(0, 0, 10, 10))
    """

    def __init__(
        self,
        fs: SimulatedFilesystem,
        name: str,
        manifest: StoreManifest,
        pages: List[PageMeta],
        index: STRtree,
        cache_pages: int = 64,
        version: int = VERSION,
        admission: str = "all",
        coalesce_gap: Optional[int] = None,
        prefetch_pages: Optional[int] = None,
        io_policy: str = "fixed",
        deltas: Sequence[Tuple[GenerationInfo, List[PageMeta], STRtree, int]] = (),
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        if admission not in ADMISSION_POLICIES:
            raise ValueError(
                f"unknown admission policy {admission!r} (use one of {ADMISSION_POLICIES})"
            )
        if io_policy not in IO_POLICIES:
            raise ValueError(
                f"unknown io policy {io_policy!r} (use one of {IO_POLICIES})"
            )
        if prefetch_pages is not None and prefetch_pages < 0:
            raise ValueError("prefetch_pages must be >= 0")
        self.fs = fs
        self.name = name
        self.manifest = manifest
        self.admission = admission
        self.io_policy = io_policy
        self.prefetch_pages = prefetch_pages
        self.paths = store_paths(name)
        #: the store's metrics namespace (``store.*`` / ``cache.*`` counters,
        #: per-partition heat) — one registry per store so two stores never
        #: share a counter; pass a shared registry explicitly to pool them
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: span recorder for the staged engine; :data:`NULL_TRACER` (zero
        #: overhead) unless a recording tracer is injected
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: bounded-retry policy for the read path (see
        #: :class:`~repro.store.scheduler.RetryPolicy`)
        self.retry_policy = retry_policy if retry_policy is not None else DEFAULT_RETRY
        #: pages that failed their checksum (or exhausted every retry) —
        #: known-bad, never re-read, never cached; a demand for one raises
        #: :class:`~repro.store.format.PageChecksumError` without I/O
        self._quarantined: Set[PageKey] = set()
        self.stats = StoreStats(self.metrics)
        self._cache: LRUPageCache[PageKey, CachedPage] = LRUPageCache(
            cache_pages, stats=self.stats.cache
        )
        self._cache_pages = cache_pages
        self._coalesce_gap = coalesce_gap

        #: generation 0 (base container) plus one entry per delta, indexed
        #: by generation id
        self.generations: List[Generation] = [
            Generation(
                gen_id=0,
                pages=pages,
                index=index,
                scheduler=self._make_scheduler(pages, self.paths["data"]),
                data_path=self.paths["data"],
                extent=manifest.extent,
                version=version,
            )
        ]
        self._partition_of_page: Dict[PageKey, int] = {
            PageKey(0, pid): part
            for pid, part in manifest.partition_of_page().items()
        }
        for info, delta_pages, delta_index, delta_version in deltas:
            if info.gen_id != len(self.generations):
                raise StoreFormatError(
                    f"store {name!r} has non-contiguous generation ids: "
                    f"expected {len(self.generations)}, got {info.gen_id}"
                )
            self.generations.append(
                Generation(
                    gen_id=info.gen_id,
                    pages=delta_pages,
                    index=delta_index,
                    scheduler=self._make_scheduler(
                        delta_pages, delta_paths(name, info.gen_id)["data"]
                    ),
                    data_path=delta_paths(name, info.gen_id)["data"],
                    extent=info.extent,
                    version=delta_version,
                )
            )
            for pid, part in info.partition_of_page().items():
                self._partition_of_page[PageKey(info.gen_id, pid)] = part
        #: record id -> newest generation that tombstoned it (occurrences in
        #: strictly older generations are invisible)
        self._tombstone_gen: Dict[int, int] = manifest.tombstone_generations()
        self.engine = StoreEngine(self)

    def _make_scheduler(self, pages: List[PageMeta], path: str) -> IOScheduler:
        """Per-generation scheduler: coalescing and readahead never span
        container files.  ``prefetch_pages=None`` means the policy default
        (no readahead under ``"fixed"``, stripe-derived depth under
        ``"cost_model"``); an explicit ``0`` disables readahead under both
        policies, and the cache-capacity guard keeps a fetch's readahead
        from evicting its own demand pages under both as well."""
        if self.io_policy == "cost_model":
            return IOScheduler.cost_aware(
                pages,
                layout=self.fs.layout_of(path),
                cost_model=self.fs.cost_model,
                gap=self._coalesce_gap,
                prefetch_limit=self.prefetch_pages,
                cache_capacity=self._cache_pages,
            )
        return IOScheduler(
            pages,
            gap=self.manifest.page_size if self._coalesce_gap is None else self._coalesce_gap,
            prefetch_pages=0 if self.prefetch_pages is None else self.prefetch_pages,
            cache_capacity=self._cache_pages,
        )

    # the base generation's state lives only in generations[0]; these
    # aliases keep the single-container surface everyone already uses
    @property
    def pages(self) -> List[PageMeta]:
        """The base container's page directory."""
        return self.generations[0].pages

    @property
    def index(self) -> STRtree:
        """The base container's packed index."""
        return self.generations[0].index

    @property
    def version(self) -> int:
        """The base container's page-payload layout version."""
        return self.generations[0].version

    @property
    def scheduler(self) -> IOScheduler:
        """The base generation's I/O scheduler (deltas each have their own)."""
        return self.generations[0].scheduler

    @property
    def _handle(self) -> Optional[FileHandle]:
        return self.generations[0].handle

    @property
    def coalesce_gap(self) -> int:
        """Byte gap between page runs still merged into one read range."""
        return self.scheduler.gap

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @classmethod
    def open(
        cls,
        fs: SimulatedFilesystem,
        name: str,
        cache_pages: int = 64,
        admission: str = "all",
        coalesce_gap: Optional[int] = None,
        prefetch_pages: Optional[int] = None,
        io_policy: str = "fixed",
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> "SpatialDataStore":
        """Open a persisted store: manifest + page directory + packed index
        (for the base container and for every delta generation stacked by
        appends).

        This is the whole cold-start cost — no record is parsed and the
        R-tree is reconstituted, not rebuilt.  Serving knobs: *admission*
        (page-cache admission policy, see :data:`ADMISSION_POLICIES`),
        *coalesce_gap* (max byte gap between candidate pages still merged
        into one read range; default one page size) and *prefetch_pages*
        (sequential readahead past the demand frontier; ``None`` keeps the
        policy default, ``0`` disables readahead under **both** policies).
        With ``io_policy="cost_model"`` the gap and the readahead depth are
        derived from the data file's striping layout and the filesystem's
        cost model instead (see :data:`IO_POLICIES`); an explicit
        *coalesce_gap* still overrides the derived gap, an explicit
        *prefetch_pages* caps the derived readahead depth, and readahead is
        always clamped so a fetch cannot evict its own demand pages from
        the cache.

        *tracer* (a :class:`~repro.obs.trace.Tracer`; default the zero-cost
        null tracer) records query spans; *metrics* supplies an external
        :class:`~repro.obs.metrics.MetricsRegistry` to account this store
        in (default: a private registry, exposed as ``store.metrics``);
        *retry_policy* bounds the transient-fault retries of both the open
        path and the serving read path (default
        :data:`~repro.store.scheduler.DEFAULT_RETRY`).
        """
        paths = store_paths(name)
        for key in ("data", "index", "manifest"):
            if not fs.exists(paths[key]):
                raise FileNotFoundError(
                    f"store {name!r} is missing {paths[key]!r}; run bulk_load first"
                )

        policy = retry_policy if retry_policy is not None else DEFAULT_RETRY
        io_seconds = 0.0
        open_retries = 0

        def _pread(fh, path: str, offset: int, nbytes: int) -> bytes:
            """Handle-level read with the same bounded retry as serving.

            A genuinely short file still returns short bytes (the format
            layer's truncation diagnostics stay intact); only reads that
            return less than the *file* can provide — injected faults — are
            retried.
            """
            nonlocal io_seconds, open_retries
            attempt = 1
            while True:
                err: Optional[Exception] = None
                buf = b""
                try:
                    buf = fh.pread(offset, nbytes)
                except OSError as exc:
                    err = exc
                if err is None and len(buf) >= min(nbytes, max(0, fh.size - offset)):
                    return buf
                if attempt >= policy.max_attempts:
                    if err is None:
                        err = StoreFormatError(
                            f"short read of {path!r} at {offset}: got "
                            f"{len(buf)} of {nbytes} bytes"
                        )
                    raise StoreError(
                        f"reading {path!r} failed after {attempt} attempt(s): {err}"
                    ) from err
                io_seconds += policy.backoff(attempt)
                open_retries += 1
                attempt += 1

        def _read_file(path: str) -> bytes:
            nonlocal io_seconds, open_retries
            data, waited, r = read_file_with_retry(fs, path, policy)
            io_seconds += waited
            open_retries += r
            return data

        manifest_raw = _read_file(paths["manifest"])
        io_seconds += fs.open_time()
        io_seconds += fs.read_time(
            paths["manifest"], [ReadRequest(0, ((0, len(manifest_raw)),))]
        )
        manifest = StoreManifest.from_json(manifest_raw.decode("utf-8"))

        with fs.open(paths["data"]) as fh:
            header = unpack_header(
                _pread(fh, paths["data"], 0, HEADER_SIZE), file_size=fh.size
            )
            tail_nbytes = header.dir_nbytes + header.checksum_nbytes
            tail = _pread(fh, paths["data"], header.dir_offset, tail_nbytes)
            io_seconds += fs.open_time()
            io_seconds += fs.read_time(
                paths["data"],
                [ReadRequest(0, ((0, HEADER_SIZE), (header.dir_offset, tail_nbytes)))],
            )
        pages = unpack_page_directory(tail[: header.dir_nbytes], header.num_pages)
        if header.has_checksums:
            crcs = unpack_page_checksums(tail[header.dir_nbytes :], header.num_pages)
            pages = [replace(meta, crc32=crc) for meta, crc in zip(pages, crcs)]
        if header.num_pages != manifest.num_pages or header.num_records != manifest.num_records:
            raise StoreFormatError(
                f"manifest and container disagree for store {name!r}: "
                f"{manifest.num_pages}/{manifest.num_records} vs "
                f"{header.num_pages}/{header.num_records} pages/records"
            )

        index_raw = _read_file(paths["index"])
        io_seconds += fs.open_time()
        io_seconds += fs.read_time(paths["index"], [ReadRequest(0, ((0, len(index_raw)),))])
        index = load_index(index_raw)

        deltas: List[Tuple[GenerationInfo, List[PageMeta], STRtree, int]] = []
        for info in manifest.generations:
            if info.num_pages == 0:
                # tombstone-only generation: no delta files were written
                deltas.append((info, [], STRtree([]), VERSION))
                continue
            dpaths = delta_paths(name, info.gen_id)
            with fs.open(dpaths["data"]) as fh:
                dheader = unpack_header(
                    _pread(fh, dpaths["data"], 0, HEADER_SIZE), file_size=fh.size
                )
                dtail_nbytes = dheader.dir_nbytes + dheader.checksum_nbytes
                dtail = _pread(fh, dpaths["data"], dheader.dir_offset, dtail_nbytes)
                io_seconds += fs.open_time()
                io_seconds += fs.read_time(
                    dpaths["data"],
                    [ReadRequest(0, ((0, HEADER_SIZE), (dheader.dir_offset, dtail_nbytes)))],
                )
            if dheader.num_pages != info.num_pages:
                raise StoreFormatError(
                    f"manifest and delta container disagree for generation "
                    f"{info.gen_id} of store {name!r}: {info.num_pages} vs "
                    f"{dheader.num_pages} pages"
                )
            delta_pages = unpack_page_directory(
                dtail[: dheader.dir_nbytes], dheader.num_pages
            )
            if dheader.has_checksums:
                dcrcs = unpack_page_checksums(
                    dtail[dheader.dir_nbytes :], dheader.num_pages
                )
                delta_pages = [
                    replace(meta, crc32=crc)
                    for meta, crc in zip(delta_pages, dcrcs)
                ]
            dindex_raw = _read_file(dpaths["index"])
            io_seconds += fs.open_time()
            io_seconds += fs.read_time(
                dpaths["index"], [ReadRequest(0, ((0, len(dindex_raw)),))]
            )
            deltas.append(
                (
                    info,
                    delta_pages,
                    load_index(dindex_raw),
                    dheader.version,
                )
            )

        store = cls(
            fs,
            name,
            manifest,
            pages,
            index,
            cache_pages=cache_pages,
            version=header.version,
            admission=admission,
            coalesce_gap=coalesce_gap,
            prefetch_pages=prefetch_pages,
            io_policy=io_policy,
            deltas=deltas,
            tracer=tracer,
            metrics=metrics,
            retry_policy=retry_policy,
        )
        store.stats.io_seconds = io_seconds
        store.stats.retries = open_retries
        return store

    @classmethod
    def bulk_load(
        cls,
        fs: SimulatedFilesystem,
        name: str,
        geometries,
        cache_pages: int = 64,
        admission: str = "all",
        coalesce_gap: Optional[int] = None,
        prefetch_pages: Optional[int] = None,
        io_policy: str = "fixed",
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
        **options,
    ) -> Tuple["SpatialDataStore", BulkLoadResult]:
        """Write the store files and open the result (load + serve in one go).

        Serving knobs (*admission*, *coalesce_gap*, *prefetch_pages*,
        *io_policy*) are forwarded to :meth:`open`; every other keyword goes
        to the bulk loader, exactly as if the two were called separately.
        """
        result = bulk_load(fs, name, geometries, **options)
        store = cls.open(
            fs,
            name,
            cache_pages=cache_pages,
            admission=admission,
            coalesce_gap=coalesce_gap,
            prefetch_pages=prefetch_pages,
            io_policy=io_policy,
            tracer=tracer,
            metrics=metrics,
        )
        return store, result

    def close(self) -> None:
        for gen in self.generations:
            if gen.handle is not None:
                gen.handle.close()
                gen.handle = None

    def __enter__(self) -> "SpatialDataStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # basic introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        """Visible logical records across all generations (tombstones out)."""
        return self.manifest.num_live_records

    @property
    def extent(self) -> Envelope:
        out = self.manifest.extent
        for gen in self.generations[1:]:
            out = out.union(gen.extent)
        return out

    @property
    def num_pages(self) -> int:
        """Pages in the base container (see :attr:`total_pages` for all
        generations)."""
        return len(self.pages)

    @property
    def total_pages(self) -> int:
        return sum(len(gen.pages) for gen in self.generations)

    @property
    def num_generations(self) -> int:
        """Delta generations stacked on the base container (0 = compact)."""
        return len(self.generations) - 1

    def describe(self) -> str:
        return (
            f"SpatialDataStore({self.name!r}: {len(self)} records, "
            f"{self.total_pages} pages, {len(self.manifest.partitions)} partitions, "
            f"{self.num_generations} delta generations on {self.fs.describe()})"
        )

    def reset_stats(self) -> None:
        """Zero every serving counter — store stats *and* cache stats (they
        share one registry), so a benchmark can measure a warm phase without
        the cold phase's totals bleeding in.  The cache *contents* are kept;
        use ``_cache.clear()`` to drop those too."""
        self.stats.reset()

    # ------------------------------------------------------------------ #
    # page access (through the cache, with coalesced I/O)
    # ------------------------------------------------------------------ #
    def _on_decode(self, n: int) -> None:
        self.stats.records_decoded += n

    def _fetch_missing(
        self,
        missing: List[PageKey],
        admit: bool,
        failed: Optional[List[Tuple[PageKey, Exception]]] = None,
    ) -> Dict[PageKey, CachedPage]:
        """Read the (sorted) *missing* pages with coalesced, gap-tolerant
        read ranges — the two-phase-I/O analogue of the serving path.

        Misses are grouped by generation (coalescing never spans container
        files); within each generation the runs come from that generation's
        :class:`~repro.store.scheduler.IOScheduler`: adjacent or near pages
        merge into one range, the whole schedule is issued as a single
        :class:`ReadRequest` (so the cost model charges one run of requests
        instead of one RPC per page), and readahead extends the final run
        past the demand frontier — by a fixed ``prefetch_pages`` depth, or
        to the stripe boundary under the cost-model policy (pages are laid
        out back to back, so the extension pays bandwidth, never extra
        latency).

        Transient read faults are retried per run under the store's
        :class:`~repro.store.scheduler.RetryPolicy`; pages still bad after
        every retry are quarantined.  With *failed* ``None`` (the default)
        the first unrecovered demand page raises; otherwise unrecovered
        demand pages are appended to *failed* as ``(key, cause)`` pairs and
        the surviving pages are returned — the degraded-mode contract.
        """
        by_gen: Dict[int, List[int]] = {}
        for key in missing:
            by_gen.setdefault(key.generation, []).append(key.page_id)

        tracer = self.tracer
        out: Dict[PageKey, CachedPage] = {}
        bad: List[Tuple[PageKey, Exception]] = []
        for gen_id in sorted(by_gen):
            gen = self.generations[gen_id]
            if gen.handle is None:
                gen.handle = self.fs.open(gen.data_path)
                self.stats.io_seconds += self.fs.open_time()

            schedule = gen.scheduler.schedule(
                sorted(by_gen[gen_id]),
                is_cached=lambda pid, g=gen_id: PageKey(g, pid) in self._cache,
                allow_prefetch=admit,
            )

            if tracer.enabled:
                for run in schedule.runs:
                    with tracer.span(
                        "io",
                        generation=gen_id,
                        pages=list(run.page_ids),
                        num_pages=len(run.page_ids),
                        nbytes=run.nbytes,
                        prefetched=run.num_prefetched,
                        policy=self.io_policy,
                        gap=gen.scheduler.gap,
                        prefetch_stop=schedule.prefetch_stop,
                    ) as span:
                        before = self.stats.retries
                        self._read_run(gen, gen_id, run, out, bad)
                        if self.stats.retries > before:
                            span.set(retries=int(self.stats.retries - before))
            else:
                for run in schedule.runs:
                    self._read_run(gen, gen_id, run, out, bad)

            self.stats.io_seconds += self.fs.read_time(
                gen.data_path, [schedule.read_request()]
            )
            self.stats.read_requests += len(schedule.runs)
            self.stats.bytes_read += schedule.total_bytes
            self.stats.pages_prefetched += schedule.num_prefetched
        self.stats.pages_read += len(missing) - len(bad)
        for key, page in out.items():
            self._cache.put(key, page, admit=admit)
        if bad:
            if failed is None:
                raise bad[0][1]
            failed.extend(bad)
        return out

    def _read_run(
        self,
        gen: Generation,
        gen_id: int,
        run,
        out: Dict[PageKey, CachedPage],
        bad: List[Tuple[PageKey, Exception]],
    ) -> None:
        """Read one coalesced run, verify checksums and slice the payloads
        into *out*, retrying the whole run on transient faults.

        Retryable: a raised ``OSError``, a short read of the run and a page
        checksum mismatch (each retry re-reads the run's bytes, charges the
        policy backoff plus the re-read to ``io_seconds`` and bumps
        ``stats.retries``).  Structural decode errors keep propagating
        immediately — a payload that parses wrong with a *valid* checksum
        (or in a legacy container without checksums) re-parses identically,
        so a retry cannot help.  Pages still bad after the last attempt are
        quarantined and appended to *bad* with their cause; readahead-only
        pages among them are dropped silently (a later demand fails fast on
        the quarantine set).
        """
        policy = self.retry_policy
        demand = set(run.demand_ids)
        attempt = 1
        while True:
            run_error: Optional[Exception] = None
            page_errors: List[Tuple[int, Exception]] = []
            pages: Dict[int, CachedPage] = {}
            try:
                buf = gen.handle.pread(run.offset, run.nbytes)
            except OSError as exc:
                run_error = exc
                buf = b""
            if run_error is None and len(buf) != run.nbytes:
                run_error = StoreFormatError(
                    f"pages {run.page_ids[0]}..{run.page_ids[-1]} of "
                    f"generation {gen_id} of store {self.name!r} are "
                    f"truncated: got {len(buf)} of {run.nbytes} bytes"
                )
            if run_error is None:
                for pid in run.page_ids:
                    meta = gen.pages[pid]
                    payload = buf[
                        meta.offset - run.offset : meta.offset - run.offset + meta.nbytes
                    ]
                    try:
                        pages[pid] = CachedPage(
                            pid,
                            payload,
                            gen.version,
                            on_decode=self._on_decode,
                            expected_crc=meta.crc32,
                        )
                    except PageChecksumError as exc:
                        exc.generation = gen_id
                        page_errors.append((pid, exc))
                if not page_errors:
                    for pid, page in pages.items():
                        out[PageKey(gen_id, pid)] = page
                    return

            if attempt < policy.max_attempts:
                self.stats.retries += 1
                self.stats.io_seconds += policy.backoff(attempt)
                self.stats.io_seconds += self.fs.read_time(
                    gen.data_path, [ReadRequest(0, ((run.offset, run.nbytes),))]
                )
                attempt += 1
                continue

            # out of attempts: quarantine what stayed bad, keep what healed
            if run_error is not None:
                page_errors = [
                    (
                        pid,
                        StoreError(
                            f"page {pid} of generation {gen_id} of store "
                            f"{self.name!r} unreadable after {attempt} "
                            f"attempt(s): {run_error}"
                        ),
                    )
                    for pid in run.page_ids
                ]
            else:
                for pid, page in pages.items():
                    out[PageKey(gen_id, pid)] = page
            for pid, exc in page_errors:
                key = PageKey(gen_id, pid)
                if key not in self._quarantined:
                    self._quarantined.add(key)
                    if isinstance(exc, PageChecksumError):
                        self.stats.checksum_failures += 1
                if pid in demand:
                    bad.append((key, exc))
            return

    @staticmethod
    def _page_key(key: Union[PageKey, Tuple[int, int], int]) -> PageKey:
        """Normalise a page address: a bare int means the base generation."""
        if isinstance(key, tuple):
            return PageKey(*key)
        return PageKey(0, key)

    def _get_pages(
        self,
        page_ids: Iterable[Union[PageKey, int]],
        admit: bool = True,
        failed: Optional[List[Tuple[PageKey, Exception]]] = None,
    ) -> Dict[PageKey, CachedPage]:
        """Resolve *page_ids* (``PageKey`` or bare base-generation ints) to
        cached page images, fetching misses in coalesced runs.  The returned
        dict holds strong references keyed by :class:`PageKey`, so the
        caller can evaluate against every page even when the cache is
        smaller than the working set.

        Quarantined pages fail without I/O.  With *failed* ``None`` a bad
        page raises; otherwise ``(key, cause)`` pairs are appended to
        *failed* and the surviving pages are returned (degraded mode).
        """
        tracer = self.tracer
        if not tracer.enabled:
            out: Dict[PageKey, CachedPage] = {}
            missing: List[PageKey] = []
            for key in sorted({self._page_key(k) for k in page_ids}):
                if self._quarantined and key in self._quarantined:
                    self._fail_quarantined(key, failed)
                    continue
                page = self._cache.get(key)
                if page is None:
                    missing.append(key)
                else:
                    out[key] = page
            if missing:
                if failed is None:
                    # two-positional call shape kept for instrumentation
                    # wrappers around _fetch_missing
                    out.update(self._fetch_missing(missing, admit))
                else:
                    out.update(self._fetch_missing(missing, admit, failed=failed))
            return out
        # traced path: one "schedule" span per resolution (its "io" children
        # are the coalesced runs the misses turned into)
        with tracer.span("schedule") as span:
            out = {}
            missing = []
            for key in sorted({self._page_key(k) for k in page_ids}):
                if self._quarantined and key in self._quarantined:
                    self._fail_quarantined(key, failed)
                    continue
                page = self._cache.get(key)
                if page is None:
                    missing.append(key)
                else:
                    out[key] = page
            span.set(
                requested=len(out) + len(missing),
                cache_hits=len(out),
                cache_misses=len(missing),
            )
            if missing:
                if failed is None:
                    # two-positional call shape kept for instrumentation
                    # wrappers around _fetch_missing
                    out.update(self._fetch_missing(missing, admit))
                else:
                    out.update(self._fetch_missing(missing, admit, failed=failed))
            return out

    def _fail_quarantined(
        self,
        key: PageKey,
        failed: Optional[List[Tuple[PageKey, Exception]]],
    ) -> None:
        exc = PageChecksumError(
            f"page {key.page_id} of generation {key.generation} of store "
            f"{self.name!r} is quarantined",
            page_id=key.page_id,
            generation=key.generation,
        )
        if failed is None:
            raise exc
        failed.append((key, exc))

    @property
    def quarantined_pages(self) -> Set[PageKey]:
        """Snapshot of the known-bad page set (checksum/retry casualties)."""
        return set(self._quarantined)

    def partition_of_page(self, key: PageKey) -> Optional[int]:
        """Partition owning *key* (degraded-result accounting helper)."""
        return self._partition_of_page.get(key)

    # ------------------------------------------------------------------ #
    # queries (all routed through the staged engine)
    # ------------------------------------------------------------------ #
    def range_query(
        self, window: Union[Envelope, Geometry], exact: bool = True,
        lazy: bool = False,
    ) -> List[QueryHit]:
        """Records intersecting *window*, de-duplicated across replicas.

        A single-window batch through the :class:`~repro.store.engine.
        StoreEngine`: the planner prunes partitions (manifest) then selects
        exact ``(page, slot)`` candidates (packed index), the I/O scheduler
        fetches only the touched pages in coalesced runs, and the refine
        executor decodes only candidate slots.  With ``exact`` the geometric
        predicate is evaluated (refine phase); otherwise the MBR test of the
        filter phase is the answer.

        With ``lazy``, hits whose slot MBR is contained in a rectangular
        window (the predicate is provably true) — and **every** hit when
        ``exact=False`` — carry a zero-copy
        :class:`~repro.store.page.RecordView` in their ``geometry`` field
        instead of a decoded geometry; the WKB/pickle decode is deferred
        until the view's ``.geometry`` is read.  Lazy hits are
        process-local (they reference the cached page image).
        """
        self.stats.queries += 1
        return self.engine.execute([(None, window)], exact=exact, lazy=lazy)[0]

    def range_query_batch(
        self,
        queries: Sequence[Tuple[Any, Union[Envelope, Geometry]]],
        exact: bool = True,
        lazy: bool = False,
    ) -> List[List[QueryHit]]:
        """Serve a batch of ``(query_id, window)`` queries in one pass.

        The batched front-end is where the filter-and-refine discipline pays
        across probes, not just within one — the engine's plan stage orders
        windows along the shared Hilbert visit order (page-cache locality),
        dedupes page touches batch-wide, and bulk-fetches the working set in
        coalesced runs when the cache can hold it (with a disabled or
        undersized cache, fetching falls back to per-query coalesced runs so
        memory stays bounded by one query's working set); the refine stage
        memoises decoded slots per page, so two probes hitting the same
        record decode it once.

        Returns one ``range_query``-identical hit list per query, in the
        input order.  ``lazy`` defers decodes exactly as in
        :meth:`range_query`.
        """
        queries = list(queries)
        self.stats.queries += len(queries)
        return self.engine.execute(queries, exact=exact, lazy=lazy)

    def query_outcome(
        self,
        queries: Sequence[Tuple[Any, Union[Envelope, Geometry]]],
        exact: bool = True,
        partial_ok: bool = False,
        budget: Optional[float] = None,
    ) -> BatchOutcome:
        """:meth:`range_query_batch` with an explicit outcome — degraded-mode
        partial results (``partial_ok``) and a per-batch simulated-I/O-seconds
        deadline (*budget*); see :meth:`StoreEngine.execute_outcome`.
        """
        queries = list(queries)
        self.stats.queries += len(queries)
        return self.engine.execute_outcome(
            queries, exact=exact, partial_ok=partial_ok, budget=budget
        )

    def join(
        self,
        probes: Sequence[Geometry],
        predicate: Predicate = predicates.intersects,
    ) -> List[Tuple[Geometry, QueryHit]]:
        """Filter-and-refine join of in-memory *probes* against the store.

        The store's packed index is the filter phase; *predicate* is the
        refine phase.  Probes are served through :meth:`range_query_batch`,
        so page touches are deduped and I/O is coalesced across the whole
        probe collection.  Returns ``(probe, hit)`` pairs in probe order.
        """
        probes = list(probes)
        per_probe = self.range_query_batch(
            [(i, probe.envelope) for i, probe in enumerate(probes)], exact=False
        )
        pairs: List[Tuple[Geometry, QueryHit]] = []
        for probe, hits in zip(probes, per_probe):
            for hit in hits:
                if predicate(probe, hit.geometry):
                    pairs.append((probe, hit))
        return pairs

    def explain(
        self, window: Union[Envelope, Geometry], exact: bool = True
    ) -> ExplainReport:
        """EXPLAIN-by-executing: run ``range_query(window, exact)`` under a
        recording tracer and report where it spent its effort.

        The report is assembled from the recorded span hierarchy plus the
        :class:`StoreStats` movement of the run, so
        ``report.stats_delta["records_decoded"]`` (and every other counter)
        is exactly what the query charged — the stats **do** move: EXPLAIN
        executes the query for real, against the real cache state.  The
        store's own tracer is restored afterwards, whatever it was.
        """
        tracer = Tracer(
            clock=getattr(self.tracer, "clock", None),
            rank=getattr(self.tracer, "rank", 0),
        )
        saved = self.tracer
        before = self.stats.as_dict()
        self.tracer = tracer
        try:
            hits = self.range_query(window, exact=exact)
        finally:
            self.tracer = saved
        return build_store_explain(
            kind="range_query",
            window=str(window),
            exact=exact,
            num_hits=len(hits),
            spans=tracer.spans,
            stats_before=before,
            stats_after=self.stats.as_dict(),
            partitions_total=len(self.manifest.partitions),
        )

    def scan(self) -> Iterator[Tuple[int, Geometry]]:
        """Every *visible* logical record exactly once (round-trip checks).

        Generations are walked newest-first so an updated record yields its
        newest version; tombstoned ids never surface.  Pages are fetched in
        bounded runs (at most one cache capacity's worth at a time) so the
        scan's memory stays bounded by the page cache, not the container —
        the engine's bounded-memory contract; under the ``"no_scan"``
        admission policy the pages additionally bypass the cache so a scan
        cannot evict the query working set.  Records stream out in
        (generation desc, page, slot) order, not record-id order.
        """
        admit = self.admission != "no_scan"
        run_len = self._cache.capacity if self._cache.capacity > 0 else 16
        seen: set = set()
        tombstones = self._tombstone_gen
        for gen in reversed(self.generations):
            # ids shadowed at this generation, as one set (same shadowing
            # rule as the engine's refine phase)
            shadow = (
                {rid for rid, tg in tombstones.items() if tg > gen.gen_id}
                if tombstones
                else set()
            )
            for start in range(0, len(gen.pages), run_len):
                keys = [
                    PageKey(gen.gen_id, pid)
                    for pid in range(start, min(start + run_len, len(gen.pages)))
                ]
                pages = self._get_pages(keys, admit=admit)
                for key in keys:
                    page = pages[key]
                    ids = page.record_ids
                    page_ids = set(ids)
                    if len(page_ids) == len(ids):
                        # bulk path: de-dup + tombstones as set operations
                        # (ids are unique within a page — pages never span
                        # partitions)
                        live = page_ids - seen if seen else page_ids
                        if shadow:
                            live -= shadow
                        if not live:
                            continue
                        seen |= live
                        record = page.record
                        if len(live) == len(ids):
                            for slot in range(len(ids)):
                                yield record(slot)
                        else:
                            for slot, rid in enumerate(ids):
                                if rid in live:
                                    yield record(slot)
                    else:
                        # duplicate ids within one page cannot come from the
                        # writers; keep first-wins slot order anyway
                        for slot, rid in enumerate(ids):
                            if rid in seen or rid in shadow:
                                continue
                            seen.add(rid)
                            yield page.record(slot)
