"""Simulated parallel filesystems (Lustre-like and GPFS-like) with explicit
I/O cost models."""

from .costmodel import ClusterConfig, IOCostModel, ReadRequest, romio_lustre_readers
from .filesystem import FileHandle, SimulatedFilesystem
from .gpfs import GPFSFilesystem
from .lustre import LustreFilesystem
from .striping import OSTLoad, StripeLayout

__all__ = [
    "StripeLayout",
    "OSTLoad",
    "ClusterConfig",
    "IOCostModel",
    "ReadRequest",
    "romio_lustre_readers",
    "SimulatedFilesystem",
    "FileHandle",
    "LustreFilesystem",
    "GPFSFilesystem",
]
