"""Armed lockstep-verification overhead on the hot serving path.

Not a figure of the paper: this benchmark pins the cost of PR 10's runtime
collective-correctness check (``repro.analysis``).  The armed verifier
piggybacks an ``(op, callsite, seq, root)`` record on every collective
exchange and cross-checks it on all ranks, so it taxes exactly the
communication steps the serving stack leans on (scatter / allgather per
batch).  The property pinned here: on a **warm** 4-rank sharded
batch-serving path, arming the check costs ≤ 5% wall time over the unarmed
run — cheap enough to leave on in every test suite (``tests/store`` runs
armed via an autouse fixture).

Set ``SPMD_CHECK_QUICK=1`` for the CI smoke variant (2 ranks, fewer
queries, fewer rounds).
"""

import os
import time

import pytest

import repro.mpisim as mpisim
from repro.analysis import collective_check
from repro.core import VectorIO
from repro.datasets import random_envelopes
from repro.store.sharded import DistributedStoreServer, sharded_bulk_load

QUICK = bool(os.environ.get("SPMD_CHECK_QUICK"))
NPROCS = 2 if QUICK else 4
NUM_QUERIES = 12 if QUICK else 48


@pytest.fixture(scope="module")
def check_store(lustre, join_datasets):
    """One sharded store plus a query batch over its full extent."""
    geometries = VectorIO(lustre).sequential_read(join_datasets["lakes_uniform"]).geometries
    sharded = sharded_bulk_load(lustre, "bench_spmd_check", geometries,
                                num_shards=NPROCS, num_partitions=16, page_size=2048)
    extent = sharded.manifest.extent
    queries = [
        (i, env)
        for i, env in enumerate(
            random_envelopes(NUM_QUERIES, extent=extent, max_size_fraction=0.08, seed=31)
        )
    ]
    return {"queries": queries}


def test_armed_check_overhead(lustre, check_store, benchmark, once):
    """Arming ``enable_collective_check`` on the sharded batch-serving path
    must cost ≤ 5% over the unarmed run — pinned here so the verifier stays
    cheap enough to leave on under every SPMD test."""
    queries = check_store["queries"]
    rounds = 3 if QUICK else 7

    def serve(comm):
        with DistributedStoreServer.open(
            comm, lustre, "bench_spmd_check", cache_pages=256
        ) as server:
            return server.range_query_batch(queries if comm.rank == 0 else None)

    def timed(armed):
        t0 = time.perf_counter()
        if armed:
            with collective_check():
                result = mpisim.run_spmd(serve, NPROCS)
        else:
            result = mpisim.run_spmd(serve, NPROCS)
        return time.perf_counter() - t0, result.values[0]

    def driver():
        # one throwaway run each way warms the simulated filesystem metadata
        # and the interpreter paths, and establishes the reference results
        _, expected = timed(armed=False)
        _, via_armed = timed(armed=True)

        # paired rounds: both paths timed back to back each round, the
        # round with the lowest armed/unarmed ratio wins — genuine check
        # overhead shows in every round, ambient machine noise (CI
        # neighbours, frequency scaling) only spikes single rounds
        unarmed, armed = 1.0, float("inf")
        for _ in range(rounds):
            u = min(timed(armed=False)[0], timed(armed=False)[0])
            a = min(timed(armed=True)[0], timed(armed=True)[0])
            if a / u < armed / unarmed:
                unarmed, armed = u, a
        return expected, via_armed, unarmed, armed

    expected, via_armed, unarmed, armed = once(driver)

    # the check is transparent: identical hits...
    assert [h.record_id for h in via_armed] == [h.record_id for h in expected]
    assert expected, "the batch query returned no hits"

    # ...and within the 5% overhead budget on the warm path
    overhead = armed / unarmed if unarmed > 0 else 1.0
    assert overhead <= 1.05, (
        f"armed lockstep-check overhead {overhead:.4f} exceeds 1.05 "
        f"({armed * 1e3:.1f}ms vs {unarmed * 1e3:.1f}ms)"
    )

    benchmark.extra_info["nprocs"] = NPROCS
    benchmark.extra_info["num_queries"] = len(queries)
    benchmark.extra_info["num_hits"] = len(expected)
    benchmark.extra_info["armed_overhead_ratio"] = float(overhead)
    benchmark.extra_info["unarmed_seconds"] = float(unarmed)
    benchmark.extra_info["armed_seconds"] = float(armed)
