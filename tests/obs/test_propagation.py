"""Cross-rank trace propagation: a traced distributed batch query yields
ONE connected trace — every rank's spans exactly once under the client's
trace id — and metric aggregation over ranks stays idempotent."""

import pytest

from repro import mpisim
from repro.datasets import random_envelopes
from repro.geometry import Envelope, Polygon
from repro.obs import Tracer
from repro.pfs import LustreFilesystem
from repro.store import AsyncStoreFrontend, DistributedStoreServer, sharded_bulk_load

NPROCS = (1, 2, 4)


def make_store(tmp_path, num_shards):
    fs = LustreFilesystem(tmp_path / "pfs")
    extent = Envelope(0.0, 0.0, 100.0, 100.0)
    geoms = [
        Polygon.from_envelope(env, userdata=i)
        for i, env in enumerate(
            random_envelopes(90, extent=extent, max_size_fraction=0.1, seed=7)
        )
    ]
    sharded_bulk_load(fs, "data", geoms, num_shards=num_shards,
                      num_partitions=16, page_size=512)
    queries = [
        (i, env)
        for i, env in enumerate(
            random_envelopes(12, extent=extent, max_size_fraction=0.2, seed=21)
        )
    ]
    return fs, queries


def serve_traced(fs, queries, nprocs, clear=False):
    def prog(comm):
        tracer = Tracer(clock=comm.clock, rank=comm.rank)
        with DistributedStoreServer.open(
            comm, fs, "data", cache_pages=32, tracer=tracer
        ) as server:
            hits = server.range_query_batch(queries if comm.rank == 0 else None)
            spans = server.collect_trace(clear=clear)
            again = server.collect_trace(clear=clear)
        return hits, spans, again

    return mpisim.run_spmd(prog, nprocs).values[0]


class TestConnectedTrace:
    @pytest.mark.parametrize("nprocs", NPROCS)
    def test_single_trace_all_ranks_no_orphans(self, tmp_path, nprocs):
        fs, queries = make_store(tmp_path, num_shards=max(2, nprocs))
        hits, spans, _ = serve_traced(fs, queries, nprocs)
        assert hits and spans

        # one trace id, owned by the client rank
        assert {s["trace_id"] for s in spans} == {spans[0]["trace_id"]}
        assert spans[0]["trace_id"].startswith("trace-0-")

        # every serving rank contributed spans
        assert {s["rank"] for s in spans} == set(range(nprocs))

        # exactly one root (the client's query span); every other span's
        # parent resolves inside the gathered set — a connected tree
        ids = {s["span_id"] for s in spans}
        assert len(ids) == len(spans), "span ids must be globally unique"
        roots = [s for s in spans if s["parent_id"] is None]
        assert len(roots) == 1
        assert roots[0]["name"] == "query" and roots[0]["rank"] == 0
        assert all(
            s["parent_id"] in ids for s in spans if s["parent_id"] is not None
        )

    @pytest.mark.parametrize("nprocs", NPROCS)
    def test_every_rank_local_phase_exactly_once(self, tmp_path, nprocs):
        """Each rank's serving work appears exactly once under the client
        trace: one local_query span per rank, reattached via the shipped
        TraceContext (rank 0 parents inline under its own query span)."""
        fs, queries = make_store(tmp_path, num_shards=max(2, nprocs))
        _, spans, _ = serve_traced(fs, queries, nprocs)
        local = [s for s in spans if s["name"] == "local_query"]
        assert sorted(s["rank"] for s in local) == list(range(nprocs))
        by_id = {s["span_id"]: s for s in spans}
        root = next(s for s in spans if s["parent_id"] is None)
        for s in local:
            assert by_id[s["parent_id"]]["span_id"] == root["span_id"]

    def test_collect_trace_clear_drains_all_ranks(self, tmp_path):
        fs, queries = make_store(tmp_path, num_shards=2)
        _, spans, again = serve_traced(fs, queries, 2, clear=True)
        assert spans
        assert again == []

    def test_collect_without_clear_is_repeatable(self, tmp_path):
        fs, queries = make_store(tmp_path, num_shards=2)
        _, spans, again = serve_traced(fs, queries, 2, clear=False)
        assert again == spans

    @pytest.mark.parametrize("nprocs", (1, 2))
    def test_untraced_results_identical(self, tmp_path, nprocs):
        """Tracing is observation only: the served hits are bit-identical
        with and without a recording tracer attached."""
        fs, queries = make_store(tmp_path, num_shards=2)

        def prog_plain(comm):
            with DistributedStoreServer.open(comm, fs, "data", cache_pages=32) as server:
                return server.range_query_batch(queries if comm.rank == 0 else None)

        plain = mpisim.run_spmd(prog_plain, nprocs).values[0]
        traced, spans, _ = serve_traced(fs, queries, nprocs)
        assert [(h.query_id, h.record_id) for h in traced] == [
            (h.query_id, h.record_id) for h in plain
        ]
        assert spans  # and the traced run did record

    def test_successive_queries_get_distinct_traces(self, tmp_path):
        fs, queries = make_store(tmp_path, num_shards=2)

        def prog(comm):
            tracer = Tracer(clock=comm.clock, rank=comm.rank)
            with DistributedStoreServer.open(
                comm, fs, "data", cache_pages=32, tracer=tracer
            ) as server:
                server.range_query_batch(queries if comm.rank == 0 else None)
                first = server.collect_trace(clear=True)
                server.range_query_batch(queries if comm.rank == 0 else None)
                second = server.collect_trace(clear=True)
            return first, second

        first, second = mpisim.run_spmd(prog, 2).values[0]
        tid_first = {s["trace_id"] for s in first}
        tid_second = {s["trace_id"] for s in second}
        assert len(tid_first) == len(tid_second) == 1
        assert tid_first != tid_second


class TestFrontendPropagation:
    @pytest.mark.parametrize("nprocs", (2, 4))
    def test_async_frontend_traces_connect(self, tmp_path, nprocs):
        fs, queries = make_store(tmp_path, num_shards=nprocs)
        batches = [queries[:6], queries[6:]]

        def prog(comm):
            tracer = Tracer(clock=comm.clock, rank=comm.rank)
            with DistributedStoreServer.open(
                comm, fs, "data", cache_pages=32, tracer=tracer
            ) as server:
                front = AsyncStoreFrontend(server, max_in_flight=2)
                result = front.serve(batches if comm.rank == 0 else None)
                spans = server.collect_trace()
            return result, spans

        result, spans = mpisim.run_spmd(prog, nprocs).values[0]
        assert result is not None and spans
        assert {s["trace_id"] for s in spans} == {spans[0]["trace_id"]}
        ids = {s["span_id"] for s in spans}
        assert all(
            s["parent_id"] in ids for s in spans if s["parent_id"] is not None
        )
        # every rank served both batches under the client trace
        local = [s for s in spans if s["name"] == "local_query"]
        assert len(local) == nprocs * len(batches)
        assert {s["rank"] for s in local} == set(range(nprocs))


class TestIdempotentAggregation:
    @pytest.mark.parametrize("nprocs", NPROCS)
    def test_aggregate_metrics_idempotent(self, tmp_path, nprocs):
        fs, queries = make_store(tmp_path, num_shards=max(2, nprocs))

        def prog(comm):
            with DistributedStoreServer.open(comm, fs, "data", cache_pages=32) as server:
                server.range_query_batch(queries if comm.rank == 0 else None)
                first = server.aggregate_metrics()
                second = server.aggregate_metrics()
            return first, second

        first, second = mpisim.run_spmd(prog, nprocs).values[0]
        assert first == second
        heat = {
            k: v for k, v in first["counters"].items()
            if k.startswith("server.shard_heat")
        }
        assert heat and all(v > 0 for v in heat.values())
        assert any(
            k.startswith("store.partition_heat") for k in first["counters"]
        )
