"""Unified metrics registry: counters, gauges and log2 latency histograms.

The repo's serving layers each grew their own stat carrier —
``StoreStats``, ``CacheStats``, ``BatchMetrics``, the virtual clock's
``breakdown`` dict — none of which compose: you cannot merge them across
ranks without bespoke code, and none can answer a percentile question.
This module is the common substrate they all now sit on:

* :class:`Counter` / :class:`Gauge` — monotone totals and last-value
  samples, optionally labelled (``registry.counter("shard_heat", shard=3)``).
* :class:`Histogram` — fixed-bucket base-2 histograms.  Bucket *i* covers
  ``(lo·2^(i-1), lo·2^i]``, so 96 buckets span nanoseconds to centuries and
  merging two histograms is element-wise addition — which is what makes
  p50/p95/p99 queries exact over *merged* data (bucket resolution, not
  sampling, is the only error source).
* :class:`MetricsRegistry` — the get-or-create namespace one store, server
  rank or front-end owns.  :meth:`MetricsRegistry.snapshot` emits plain
  JSON-able dicts; :func:`merge_snapshots` combines any number of them
  (sum counters, max gauges, add histogram buckets); and because snapshots
  are **absolute** values, aggregation over ranks through the existing
  collectives is idempotent — calling it twice can never double-count.

Per-partition / per-shard **query-heat** counters (the future rebalancer's
input) are ordinary labelled counters in these registries; see
``StoreEngine`` and ``DistributedStoreServer``.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, Mapping, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
]


def metric_key(name: str, labels: Mapping[str, Any]) -> str:
    """Canonical flat key: ``name`` or ``name{k=v,...}`` with sorted labels."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotone total (float-valued so simulated seconds fit too)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount


class Gauge:
    """A last-value sample (e.g. current generation count, cache fill)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket base-2 histogram good enough for p50/p95/p99.

    Bucket *i* holds values in ``(lo·2^(i-1), lo·2^i]`` (bucket 0 takes
    everything ``<= lo``); the exact count, sum, min and max ride along, so
    a percentile answer is the containing bucket's upper edge clamped to
    the observed range — at most a factor-2 overestimate, and *identical*
    whether computed before or after merging (the merge is element-wise
    bucket addition).
    """

    __slots__ = ("lo", "nbuckets", "buckets", "count", "total", "min", "max")

    def __init__(self, lo: float = 1e-9, nbuckets: int = 96) -> None:
        if lo <= 0:
            raise ValueError("lo must be positive")
        if nbuckets < 2:
            raise ValueError("need at least 2 buckets")
        self.lo = lo
        self.nbuckets = nbuckets
        #: sparse bucket index -> count (most workloads touch a few buckets)
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    # ------------------------------------------------------------------ #
    def _bucket(self, value: float) -> int:
        if value <= self.lo:
            return 0
        idx = int(math.ceil(math.log2(value / self.lo)))
        # ceil(log2) can round a value sitting exactly on an edge up one
        # bucket through float noise; nudge back down when it did
        if idx > 0 and value <= self.lo * 2.0 ** (idx - 1):
            idx -= 1
        return min(idx, self.nbuckets - 1)

    def record(self, value: float) -> None:
        value = float(value)
        idx = self._bucket(value)
        self.buckets[idx] = self.buckets.get(idx, 0) + 1
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    # ------------------------------------------------------------------ #
    def percentile(self, q: float) -> float:
        """Upper bucket edge of the *q*-th percentile (0 <= q <= 100),
        clamped to the observed min/max."""
        if not 0 <= q <= 100:
            raise ValueError("q must be in [0, 100]")
        if self.count == 0:
            return 0.0
        target = max(1, math.ceil(self.count * q / 100.0))
        cum = 0
        for idx in sorted(self.buckets):
            cum += self.buckets[idx]
            if cum >= target:
                edge = self.lo * 2.0 ** idx if idx > 0 else self.lo
                return max(self.min, min(edge, self.max))
        return self.max  # pragma: no cover - cum always reaches count

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    # ------------------------------------------------------------------ #
    def merge(self, other: "Histogram") -> None:
        """Element-wise merge; equals the histogram of the combined stream."""
        if other.lo != self.lo or other.nbuckets != self.nbuckets:
            raise ValueError("cannot merge histograms with different bucketing")
        for idx, c in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + c
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def state(self) -> Dict[str, Any]:
        """JSON-able absolute state (the snapshot/merge currency)."""
        return {
            "type": "histogram",
            "lo": self.lo,
            "nbuckets": self.nbuckets,
            "buckets": {str(i): c for i, c in sorted(self.buckets.items())},
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }

    def as_dict(self) -> Dict[str, Any]:
        """:meth:`state` plus the ready-to-read percentile summary."""
        out = self.state()
        out.update(
            mean=self.mean,
            p50=self.percentile(50),
            p95=self.percentile(95),
            p99=self.percentile(99),
        )
        return out

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "Histogram":
        hist = cls(lo=state.get("lo", 1e-9), nbuckets=state.get("nbuckets", 96))
        hist.buckets = {int(i): int(c) for i, c in state.get("buckets", {}).items()}
        hist.count = int(state.get("count", 0))
        hist.total = float(state.get("sum", 0.0))
        if hist.count:
            hist.min = float(state["min"])
            hist.max = float(state["max"])
        return hist


class MetricsRegistry:
    """Get-or-create namespace of counters, gauges and histograms.

    One registry per observed component (a store, a server rank, a
    front-end); the same ``(name, labels)`` pair always returns the same
    metric object, so hot paths can cache the handle and skip the lookup.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._clock_unbind: Optional[Any] = None

    # ------------------------------------------------------------------ #
    def counter(self, name: str, **labels: Any) -> Counter:
        key = metric_key(name, labels)
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter()
        return metric

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = metric_key(name, labels)
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge()
        return metric

    def histogram(
        self, name: str, lo: float = 1e-9, nbuckets: int = 96, **labels: Any
    ) -> Histogram:
        key = metric_key(name, labels)
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram(lo=lo, nbuckets=nbuckets)
        return metric

    # ------------------------------------------------------------------ #
    def counters_with_prefix(self, prefix: str) -> Dict[str, float]:
        """Flat ``key -> value`` view of every counter under *prefix* —
        e.g. ``counters_with_prefix("store.partition_heat")`` is the heat
        map a rebalancer would consume."""
        return {
            key: c.value
            for key, c in sorted(self._counters.items())
            if key.startswith(prefix)
        }

    def snapshot(self) -> Dict[str, Any]:
        """Absolute JSON-able state of every metric (the merge currency)."""
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {
                k: h.state() for k, h in sorted(self._histograms.items())
            },
        }

    def aggregate(self, comm) -> Dict[str, Any]:
        """Merged snapshot across every rank of *comm* (collective).

        Each call allgathers fresh **absolute** snapshots and merges them,
        so repeated calls are idempotent — exactly the convention
        ``DistributedStoreServer.aggregate_stats`` established.
        """
        return merge_snapshots(comm.allgather(self.snapshot()))

    # ------------------------------------------------------------------ #
    def bind_clock(self, clock, name: str = "clock.seconds") -> None:
        """Mirror a :class:`~repro.mpisim.clock.VirtualClock`'s per-category
        advances into labelled counters (``clock.seconds{category=io}``)."""
        if self._clock_unbind is not None:
            raise ValueError("registry is already bound to a clock")

        def on_advance(seconds: float, category: str) -> None:
            self.counter(name, category=category).inc(seconds)

        clock.add_listener(on_advance)
        self._clock_unbind = (clock, on_advance)

    def unbind_clock(self) -> None:
        if self._clock_unbind is not None:
            clock, listener = self._clock_unbind
            clock.remove_listener(listener)
            self._clock_unbind = None


def merge_snapshots(snapshots: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Merge registry snapshots: counters sum, gauges take the max (they are
    last-value samples — the maximum over ranks is the conservative read),
    histograms merge bucket-wise.  Input snapshots are absolute state, so
    merging the output with more snapshots later, or re-merging the same
    inputs, behaves like set union over the underlying event streams."""
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Histogram] = {}
    for snap in snapshots:
        for key, value in snap.get("counters", {}).items():
            counters[key] = counters.get(key, 0) + value
        for key, value in snap.get("gauges", {}).items():
            gauges[key] = max(gauges.get(key, value), value)
        for key, state in snap.get("histograms", {}).items():
            hist = Histogram.from_state(state)
            if key in histograms:
                histograms[key].merge(hist)
            else:
                histograms[key] = hist
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": {k: h.state() for k, h in sorted(histograms.items())},
    }
