"""Vectorized refine/scan hot path — bulk filter vs the scalar slot loop.

Not a figure of the paper: this benchmark extends the `repro.store` perf
trajectory to PR 9's vectorized refine path.  Three measurements:

* **warm filter stage** — the surviving-slot filter (replica de-dup +
  tombstone shadowing + window intersection over the parsed envelope
  columns) timed in isolation over warm pages, against a verbatim mirror
  of the per-slot scalar loop it replaced (per-slot ``record_ids[slot]``
  indexing, ``page.envelope(slot)`` materialization, per-slot seen-set and
  tombstone-dict probes).  The acceptance bar lives here: **>= 5x** in
  slots/second at equal surviving slots.
* **end-to-end refine** — ``RefineExecutor.refine`` vs the kept-verbatim
  ``refine_reference`` oracle, asserting identical hits and identical
  ``records_decoded`` (the bulk path is an optimization, not a rewrite);
  the wall-clock ratio is reported, not asserted, because both sides
  bottom out in the same per-hit materialization cost on warm caches.
* **adaptive in-flight sweep** — ``AsyncStoreFrontend`` serving the same
  batch workload under fixed windows 1/4/16 and ``"adaptive"``; results
  must be identical everywhere and the adaptive virtual-clock makespan
  must land within the fixed-window envelope (no pathological window
  choice).

Pages are deliberately fat (64 KiB) so each (query, page) batch carries
many candidate slots: that is the workload the column layout targets, and
what serving stores use; the tiny-page regime is covered by the equality
battery in ``tests/store/test_refine_hot_path.py``.

Set ``HOT_PATH_QUICK=1`` for the CI smoke variant (fewer probes/batches).
"""

import os
import time

import pytest

from repro import mpisim
from repro.core import VectorIO
from repro.datasets import random_envelopes
from repro.store import (
    AsyncStoreFrontend,
    DistributedStoreServer,
    SpatialDataStore,
    bulk_load,
    sharded_bulk_load,
)
from repro.store.engine import _newest_first

QUICK = bool(os.environ.get("HOT_PATH_QUICK"))
NUM_WINDOWS = 8 if QUICK else 24
FILTER_REPS = 5 if QUICK else 20
#: the acceptance bar; the smoke variant keeps a sanity margin only, since
#: its short passes are dominated by scheduler jitter
MIN_FILTER_SPEEDUP = 2.5 if QUICK else 5.0


@pytest.fixture(scope="module")
def hot_store(lustre, join_datasets):
    """The uniform lakes layer packed into fat (64 KiB) pages.

    Deliberately a clean single-generation store: pages carrying shadowed
    slots drop off the all-survivors fast path into the per-slot fallback,
    so a tombstone-heavy store measures the fallback, not the vectorized
    pass.  Generation/tombstone correctness is the equality battery's job
    (``tests/store/test_refine_hot_path.py``); this file measures the hot path.
    """
    geometries = VectorIO(lustre).sequential_read(
        join_datasets["lakes_uniform"]
    ).geometries
    result = bulk_load(lustre, "bench_hot_lakes", geometries,
                       num_partitions=4, page_size=65536)
    return {"result": result, "num_geometries": len(geometries)}


def filter_workload(store, num_windows, seed=5):
    """Plan a mixed window batch (whole extent + large windows) and fetch
    every touched page once, so both filter implementations run warm."""
    extent = store.manifest.extent
    windows = [extent] + list(
        random_envelopes(num_windows, extent=extent, max_size_fraction=0.5,
                         seed=seed)
    )
    plan = store.engine.planner.plan(list(enumerate(windows)))
    work = [(entry, store._get_pages(entry.by_page)) for entry in plan.entries]
    slots = sum(
        len(slots) for entry, _ in work for slots in entry.by_page.values()
    )
    return work, slots


def scalar_filter(executor, tombstone_gen, entry, pages):
    """The pre-PR-9 per-slot filter loop, mirrored verbatim from the old
    refine inner loop (see ``RefineExecutor.refine_reference``): per-slot
    array indexing, per-slot ``Envelope`` materialization and containment
    test, per-slot dict/set probes."""
    window = entry.env
    seen = set()
    out = []
    for key in sorted(entry.by_page, key=lambda k: (-k[0], k[1])):
        page = pages[key]
        generation = key[0]
        kept = []
        for slot in entry.by_page[key]:
            record_id = page.record_ids[slot]
            if record_id in seen:
                continue
            if tombstone_gen.get(record_id, -1) > generation:
                continue
            seen.add(record_id)
            slot_env = page.envelope(slot)
            if slot_env is not None and window.intersects(slot_env):
                kept.append(slot)
        if kept:
            out.append((key, kept))
    return out


def bulk_filter(executor, tombstone_gen, entry, pages):
    """The PR 9 surviving-slot pass: set-operation de-dup/shadowing over
    the flat id arrays, page-level bounds shortcut, fused containment mask
    — no per-slot dict or attribute lookups."""
    seen = set()
    out = []
    for key in sorted(entry.by_page, key=_newest_first):
        slots = entry.by_page[key]
        if not slots:
            continue
        page = pages[key]
        survivors, _, _ = executor._surviving_slots(page, slots, key[0], seen)
        if survivors:
            out.append((key, survivors))
    return out


def time_filters(executor, tombstone_gen, work, reps, rounds=5):
    """Per-pass seconds for each filter implementation, measured as paired
    rounds (scalar then bulk back to back, so machine-wide slowdowns hit
    both sides of a round equally); returns the round with the best ratio —
    the noise-robust estimator of the demonstrated speedup."""
    best = (0.0, 1.0)
    for _ in range(rounds):
        t0 = time.perf_counter()
        for _ in range(reps):
            for entry, pages in work:
                scalar_filter(executor, tombstone_gen, entry, pages)
        scalar_s = (time.perf_counter() - t0) / reps
        t0 = time.perf_counter()
        for _ in range(reps):
            for entry, pages in work:
                bulk_filter(executor, tombstone_gen, entry, pages)
        bulk_s = (time.perf_counter() - t0) / reps
        if scalar_s / bulk_s > best[0] / best[1]:
            best = (scalar_s, bulk_s)
    return best


def test_warm_filter_stage_speedup(lustre, hot_store, benchmark, once):
    def driver():
        store = SpatialDataStore.open(lustre, "bench_hot_lakes",
                                      cache_pages=512)
        work, slots = filter_workload(store, NUM_WINDOWS)
        executor = store.engine.executor
        tombs = store._tombstone_gen

        # equality first: same surviving (page, slot) pairs per entry.  The
        # scalar loop keeps only window-intersecting slots; every planner
        # candidate intersects (the STRtree pruned the rest), so the
        # surviving sets must agree exactly.
        flat = lambda out: sorted(
            (key, slot) for key, kept in out for slot in kept
        )
        for entry, pages in work:
            got = flat(bulk_filter(executor, tombs, entry, pages))
            want = flat(scalar_filter(executor, tombs, entry, pages))
            assert got == want

        scalar_s, bulk_s = time_filters(executor, tombs, work, FILTER_REPS)
        store.close()
        return slots, scalar_s, bulk_s

    slots, scalar_s, bulk_s = once(driver)
    speedup = scalar_s / bulk_s
    print(
        f"\nwarm filter stage: {slots} slots/pass, scalar "
        f"{slots / scalar_s:,.0f} slots/s, bulk {slots / bulk_s:,.0f} "
        f"slots/s -> {speedup:.1f}x"
    )
    # the PR 9 acceptance bar
    assert speedup >= MIN_FILTER_SPEEDUP
    benchmark.extra_info["slots_per_pass"] = float(slots)
    benchmark.extra_info["scalar_slots_per_second"] = float(slots / scalar_s)
    benchmark.extra_info["bulk_slots_per_second"] = float(slots / bulk_s)
    benchmark.extra_info["speedup"] = float(speedup)


def test_refine_end_to_end_parity(lustre, hot_store, benchmark, once):
    def driver():
        # independent opens: each side pays its own decode accounting
        bulk_store = SpatialDataStore.open(lustre, "bench_hot_lakes",
                                           cache_pages=512)
        work, slots = filter_workload(bulk_store, NUM_WINDOWS)
        executor = bulk_store.engine.executor

        ref_store = SpatialDataStore.open(lustre, "bench_hot_lakes",
                                          cache_pages=512)
        ref_work, _ = filter_workload(ref_store, NUM_WINDOWS)
        ref_executor = ref_store.engine.executor

        t0 = time.perf_counter()
        ref_hits = [
            ref_executor.refine_reference(entry, pages, True)
            for entry, pages in ref_work
        ]
        scalar_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        bulk_hits = [
            executor.refine(entry, pages, True) for entry, pages in work
        ]
        bulk_s = time.perf_counter() - t0

        keys = lambda hits: [
            (h.record_id, h.page_id, h.generation) for h in hits
        ]
        assert [keys(h) for h in bulk_hits] == [keys(h) for h in ref_hits]
        # decode parity: the bulk path decodes exactly the slots the scalar
        # loop decoded — the counters of PR 6/8 cannot drift under PR 9
        decoded = (bulk_store.stats.records_decoded,
                   ref_store.stats.records_decoded)
        bulk_store.close()
        ref_store.close()
        return slots, scalar_s, bulk_s, decoded, sum(len(h) for h in bulk_hits)

    slots, scalar_s, bulk_s, (bulk_dec, ref_dec), hits = once(driver)
    assert bulk_dec == ref_dec
    assert hits > 0
    print(
        f"\nend-to-end refine: {hits} hits, records_decoded parity "
        f"{bulk_dec}=={ref_dec}, scalar {scalar_s * 1e3:.1f} ms vs bulk "
        f"{bulk_s * 1e3:.1f} ms ({scalar_s / bulk_s:.1f}x)"
    )
    benchmark.extra_info["hits"] = float(hits)
    benchmark.extra_info["records_decoded"] = float(bulk_dec)
    benchmark.extra_info["refine_speedup"] = float(scalar_s / bulk_s)


def test_adaptive_in_flight_sweep(lustre, hot_store, benchmark, once):
    geoms_per_batch = 4
    num_batches = 4 if QUICK else 10

    def serve(mode):
        def prog(comm):
            with DistributedStoreServer.open(
                comm, lustre, "bench_hot_lakes_sharded"
            ) as server:
                extent = server.manifest.extent
                envs = list(
                    random_envelopes(
                        num_batches * geoms_per_batch, extent=extent,
                        max_size_fraction=0.15, seed=23,
                    )
                )
                batches = [
                    [
                        (f"b{b}.q{i}", env)
                        for i, env in enumerate(
                            envs[b * geoms_per_batch:(b + 1) * geoms_per_batch]
                        )
                    ]
                    for b in range(num_batches)
                ]
                frontend = AsyncStoreFrontend(server, max_in_flight=mode)
                result = frontend.serve(batches if comm.rank == 0 else None)
                if result is None:
                    return None
                return (
                    [[(h.query_id, h.record_id) for h in b] for b in result.batches],
                    result.makespan,
                    result.windows,
                )

        return mpisim.run_spmd(prog, 4).values[0]

    def driver():
        geometries = VectorIO(lustre).sequential_read("datasets/lakes_uniform.wkt").geometries
        if not lustre.exists("stores/bench_hot_lakes_sharded/shards.json"):
            sharded_bulk_load(lustre, "bench_hot_lakes_sharded", geometries,
                              num_shards=4, num_partitions=8)
        # interleaved rounds, min makespan per mode: the virtual makespan
        # includes compute charges measured from real CPU time, and ambient
        # slowdown (GC pressure late in a long suite) would otherwise
        # inflate whichever mode happens to run last
        sweep = {}
        for _ in range(1 if QUICK else 3):
            for mode in (1, 4, 16, "adaptive"):
                keys, span, windows = serve(mode)
                prev = sweep.get(mode)
                if prev is None:
                    sweep[mode] = [keys, span, windows]
                else:
                    assert keys == prev[0], f"results differ across rounds for window={mode}"
                    prev[1] = min(prev[1], span)
        return sweep

    sweep = once(driver)
    baseline_keys = sweep[1][0]
    for mode, (keys, makespan, windows) in sweep.items():
        assert keys == baseline_keys, f"results differ for window={mode}"
        assert makespan > 0.0
    fixed_spans = {m: sweep[m][1] for m in (1, 4, 16)}
    adaptive_span = sweep["adaptive"][1]
    adaptive_windows = sweep["adaptive"][2]
    assert adaptive_windows and all(1 <= w <= 16 for w in adaptive_windows)
    # the policy must not pick a pathological window: the adaptive makespan
    # stays within the fixed sweep's envelope.  Generous tolerance — the
    # virtual makespan includes compute charges measured from real CPU
    # time, which jitters run to run; the smoke variant has too few batches
    # to amortize its warmup (it starts at window 2), so it only checks
    # result equality and window sanity above
    if not QUICK:
        assert adaptive_span <= max(fixed_spans.values()) * 1.5
    print("\nadaptive in-flight sweep (virtual makespan):")
    for mode in (1, 4, 16):
        print(f"  fixed {mode:>2}: {fixed_spans[mode]:.4f} s")
    print(
        f"  adaptive: {adaptive_span:.4f} s, windows {adaptive_windows}"
    )
    benchmark.extra_info["fixed_makespans"] = {
        str(k): float(v) for k, v in fixed_spans.items()
    }
    benchmark.extra_info["adaptive_makespan"] = float(adaptive_span)
    benchmark.extra_info["adaptive_windows"] = [float(w) for w in adaptive_windows]
