"""Page/record/header codec tests for the store's binary container."""

import pytest

from repro.geometry import Envelope, LineString, Point, Polygon
from repro.store.format import (
    ENVELOPE_ENTRY,
    HEADER_SIZE,
    PAGE_DIR_ENTRY,
    SUPPORTED_VERSIONS,
    VERSION,
    PageMeta,
    StoreFormatError,
    decode_envelope_column,
    decode_page,
    decode_record_body,
    encode_page,
    encode_page_v2,
    encode_record,
    encode_record_body,
    pack_header,
    pack_page_directory,
    unpack_header,
    unpack_page_directory,
)


def sample_geometries():
    return [
        Point(1.5, -2.5, userdata="a point"),
        LineString([(0, 0), (3, 4), (10, 10)], userdata={"id": 7}),
        Polygon([(0, 0), (4, 0), (4, 4), (0, 4), (0, 0)]),
    ]


class TestPageCodec:
    def test_round_trip(self):
        geoms = sample_geometries()
        payload = encode_page([encode_record(i, g) for i, g in enumerate(geoms)])
        decoded = decode_page(payload)
        assert [rid for rid, _ in decoded] == [0, 1, 2]
        for (rid, got), want in zip(decoded, geoms):
            assert got.wkt() == want.wkt()
            assert got.userdata == want.userdata

    def test_empty_page(self):
        assert decode_page(encode_page([])) == []

    def test_truncated_payload_raises(self):
        payload = encode_page([encode_record(0, Point(1, 2))])
        with pytest.raises(StoreFormatError):
            decode_page(payload[:-3])

    def test_truncated_count_raises(self):
        with pytest.raises(StoreFormatError):
            decode_page(b"\x01")

    def test_record_ids_preserved(self):
        payload = encode_page([encode_record(42, Point(0, 0)), encode_record(7, Point(1, 1))])
        assert [rid for rid, _ in decode_page(payload)] == [42, 7]

    def test_trailing_garbage_raises(self):
        # regression: decode_page silently accepted bytes after the last
        # record (pos != len(payload) was never checked)
        payload = encode_page([encode_record(0, Point(1, 2))])
        with pytest.raises(StoreFormatError, match="trailing"):
            decode_page(payload + b"\x99\x99\x99")
        with pytest.raises(StoreFormatError, match="trailing"):
            decode_page(encode_page([]) + b"\x00")


def _v2_entries(geoms):
    return [(rid, g.envelope, encode_record_body(g)) for rid, g in enumerate(geoms)]


class TestPageCodecV2:
    def test_round_trip(self):
        geoms = sample_geometries()
        payload = encode_page_v2(_v2_entries(geoms))
        decoded = decode_page(payload, version=2)
        assert [rid for rid, _ in decoded] == [0, 1, 2]
        for (rid, got), want in zip(decoded, geoms):
            assert got.wkt() == want.wkt()
            assert got.userdata == want.userdata

    def test_empty_page(self):
        assert decode_page(encode_page_v2([]), version=2) == []

    def test_envelope_column_matches_geometry_mbrs(self):
        geoms = sample_geometries()
        payload = encode_page_v2(_v2_entries(geoms))
        column = decode_envelope_column(payload)
        assert len(column) == len(geoms)
        for (rid, _, minx, miny, maxx, maxy), g in zip(column, geoms):
            assert (minx, miny, maxx, maxy) == g.envelope.as_tuple()

    def test_column_filter_never_touches_bodies(self):
        # the envelope column sits ahead of the bodies: zapping every body
        # byte must not disturb a pure column scan
        geoms = sample_geometries()
        payload = encode_page_v2(_v2_entries(geoms))
        column_end = 4 + len(geoms) * ENVELOPE_ENTRY.size
        body = decode_envelope_column(payload)  # valid payload parses fully
        import struct as _struct

        # overwrite the WKB/userdata *content* (not the per-body prefixes)
        corrupted = bytearray(payload)
        for _, off, *_rest in body:
            blen, ulen = _struct.unpack_from("<II", payload, off)
            corrupted[off + 8 : off + 8 + blen + ulen] = b"\xab" * (blen + ulen)
        got = decode_envelope_column(bytes(corrupted))
        assert [entry[:2] for entry in got] == [entry[:2] for entry in body]
        assert column_end <= len(payload)

    def test_lazy_body_decode_at_offset(self):
        geoms = sample_geometries()
        payload = encode_page_v2(_v2_entries(geoms))
        column = decode_envelope_column(payload)
        # decode only the last slot: the other bodies are never parsed
        rid, offset, *_ = column[-1]
        geom = decode_record_body(payload, offset)
        assert rid == 2
        assert geom.wkt() == geoms[2].wkt()

    def test_trailing_garbage_raises(self):
        payload = encode_page_v2(_v2_entries(sample_geometries()))
        with pytest.raises(StoreFormatError, match="trailing"):
            decode_page(payload + b"\x01\x02", version=2)
        with pytest.raises(StoreFormatError, match="trailing"):
            decode_page(encode_page_v2([]) + b"\x00", version=2)

    def test_truncated_column_raises(self):
        payload = encode_page_v2(_v2_entries(sample_geometries()))
        with pytest.raises(StoreFormatError):
            decode_page(payload[: 4 + ENVELOPE_ENTRY.size - 1], version=2)

    def test_truncated_body_raises(self):
        payload = encode_page_v2(_v2_entries(sample_geometries()))
        with pytest.raises(StoreFormatError):
            decode_page(payload[:-3], version=2)

    def test_zeroed_payload_raises(self):
        payload = encode_page_v2(_v2_entries(sample_geometries()))
        with pytest.raises(StoreFormatError):
            decode_page(b"\x00" * len(payload), version=2)

    def test_unknown_version_rejected(self):
        with pytest.raises(StoreFormatError, match="version"):
            decode_page(encode_page([]), version=3)


class TestHeader:
    def test_round_trip(self):
        raw = pack_header(page_size=4096, num_pages=12, num_records=300, dir_offset=99999)
        assert len(raw) == HEADER_SIZE
        header = unpack_header(raw)
        assert header.page_size == 4096
        assert header.num_pages == 12
        assert header.num_records == 300
        assert header.dir_offset == 99999
        assert header.dir_nbytes == 12 * PAGE_DIR_ENTRY.size

    def test_bad_magic(self):
        raw = b"NOTMAGIC" + pack_header(1, 1, 1, 1)[8:]
        with pytest.raises(StoreFormatError, match="magic"):
            unpack_header(raw)

    def test_short_header(self):
        with pytest.raises(StoreFormatError, match="header"):
            unpack_header(b"\x00" * 10)

    def test_version_round_trips(self):
        assert VERSION == 2
        for version in SUPPORTED_VERSIONS:
            raw = pack_header(4096, 1, 1, HEADER_SIZE, version=version)
            assert unpack_header(raw).version == version

    def test_unsupported_versions_rejected(self):
        with pytest.raises(StoreFormatError, match="version"):
            pack_header(4096, 1, 1, HEADER_SIZE, version=3)
        import struct as _struct

        raw = bytearray(pack_header(4096, 1, 1, HEADER_SIZE))
        _struct.pack_into("<H", raw, 8, 9)  # version field sits after the magic
        with pytest.raises(StoreFormatError, match="version"):
            unpack_header(bytes(raw))

    def test_directory_bounds_validated_against_file_size(self):
        # regression: a truncated directory used to surface as a short-read
        # struct.error at unpack_page_directory time; with the file size in
        # hand the header itself must reject it
        raw = pack_header(page_size=4096, num_pages=12, num_records=300, dir_offset=1000)
        needed = 1000 + 12 * PAGE_DIR_ENTRY.size
        assert unpack_header(raw, file_size=needed).num_pages == 12
        with pytest.raises(StoreFormatError, match="directory"):
            unpack_header(raw, file_size=needed - 1)

    def test_directory_before_payload_rejected(self):
        raw = pack_header(page_size=4096, num_pages=1, num_records=1, dir_offset=10)
        with pytest.raises(StoreFormatError, match="directory"):
            unpack_header(raw, file_size=10_000)


class TestPageDirectory:
    def test_round_trip(self):
        metas = [
            PageMeta(0, 64, 120, 3, Envelope(0, 0, 1, 1)),
            PageMeta(1, 184, 80, 2, Envelope(-5, -5, 5, 5)),
        ]
        raw = pack_page_directory(metas)
        back = unpack_page_directory(raw, 2)
        assert back == metas

    def test_empty_mbr_round_trips(self):
        metas = [PageMeta(0, 64, 4, 0, Envelope.empty())]
        back = unpack_page_directory(pack_page_directory(metas), 1)
        assert back[0].mbr.is_empty

    def test_size_mismatch_raises(self):
        raw = pack_page_directory([PageMeta(0, 64, 10, 1, Envelope(0, 0, 1, 1))])
        with pytest.raises(StoreFormatError, match="directory"):
            unpack_page_directory(raw, 2)

    def test_non_monotonic_offsets_rejected(self):
        # the serving path's run coalescing relies on pages laid out back to
        # back in page-id order; a reordered directory is corruption
        raw = pack_page_directory([
            PageMeta(0, 184, 80, 2, Envelope(0, 0, 1, 1)),
            PageMeta(1, 64, 120, 3, Envelope(0, 0, 1, 1)),
        ])
        with pytest.raises(StoreFormatError, match="monotonic"):
            unpack_page_directory(raw, 2)

    def test_overlapping_pages_rejected(self):
        raw = pack_page_directory([
            PageMeta(0, 64, 120, 3, Envelope(0, 0, 1, 1)),
            PageMeta(1, 100, 80, 2, Envelope(0, 0, 1, 1)),
        ])
        with pytest.raises(StoreFormatError, match="monotonic"):
            unpack_page_directory(raw, 2)

    def test_page_inside_header_rejected(self):
        raw = pack_page_directory([PageMeta(0, 10, 30, 1, Envelope(0, 0, 1, 1))])
        with pytest.raises(StoreFormatError, match="monotonic"):
            unpack_page_directory(raw, 1)
