"""MPI derived datatypes.

The paper leans on derived datatypes in three places:

* fixed-size binary records (points / MBRs) read straight into struct-like
  types (Figure 12 compares ``MPI_Type_struct`` against a user-assembled
  ``MPI_Type_contiguous``),
* non-contiguous file views built from ``MPI_Type_vector`` (fixed records,
  Figure 15) and ``MPI_Type_indexed`` (variable-length polygons, Figure 16),
* the spatial types ``MPI_POINT`` / ``MPI_LINE`` / ``MPI_RECT`` of Table 2,
  which are thin wrappers over these constructors
  (see :mod:`repro.core.spatial_types`).

A datatype is described by its *typemap*: a list of ``(offset, nbytes)``
blocks covering one element, plus an *extent* (the stride between successive
elements).  That is exactly the information MPI implementations use to build
file views and pack/unpack non-contiguous buffers, and it is what the
simulated MPI-IO layer consumes.
"""

from __future__ import annotations

import struct
from typing import List, Sequence, Tuple

__all__ = [
    "Datatype",
    "BasicType",
    "MPI_BYTE",
    "MPI_CHAR",
    "MPI_INT",
    "MPI_LONG",
    "MPI_FLOAT",
    "MPI_DOUBLE",
    "create_contiguous",
    "create_vector",
    "create_indexed",
    "create_struct",
]

Block = Tuple[int, int]  # (byte offset, byte length)


class Datatype:
    """Base class for MPI datatypes.

    Subclasses must provide :attr:`size` (bytes of actual data per element),
    :attr:`extent` (span of one element including gaps) and
    :meth:`blocks` (the typemap for one element, sorted by offset).
    """

    name: str = "datatype"

    def __init__(self, size: int, extent: int, blocks: Sequence[Block]) -> None:
        self._size = int(size)
        self._extent = int(extent)
        self._blocks = self._coalesce(sorted((int(o), int(l)) for o, l in blocks))
        self._committed = False

    # -- MPI-style metadata ------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of data bytes in one element (``MPI_Type_size``)."""
        return self._size

    @property
    def extent(self) -> int:
        """Span of one element in a buffer or file (``MPI_Type_get_extent``)."""
        return self._extent

    def blocks(self) -> List[Block]:
        """Typemap of one element: ``[(offset, nbytes), ...]`` sorted by offset."""
        return list(self._blocks)

    @property
    def is_contiguous(self) -> bool:
        return len(self._blocks) == 1 and self._blocks[0] == (0, self._size) and self._extent == self._size

    # -- commit / free mirror the MPI API ----------------------------------- #
    def Commit(self) -> "Datatype":
        self._committed = True
        return self

    def Free(self) -> None:
        self._committed = False

    @property
    def committed(self) -> bool:
        return self._committed

    # -- layout expansion ---------------------------------------------------- #
    def element_blocks(self, index: int) -> List[Block]:
        """Typemap of element *index* (shifted by ``index * extent``)."""
        base = index * self._extent
        return [(base + off, length) for off, length in self._blocks]

    def layout(self, count: int, offset: int = 0) -> List[Block]:
        """Absolute byte blocks of *count* consecutive elements starting at
        byte *offset*; adjacent blocks are coalesced.

        This is the file-view expansion used by the MPI-IO layer: the
        number of resulting blocks is what makes non-contiguous access slow.
        """
        blocks: List[Block] = []
        for i in range(count):
            base = offset + i * self._extent
            for off, length in self._blocks:
                blocks.append((base + off, length))
        return self._coalesce(blocks)

    @staticmethod
    def _coalesce(blocks: Sequence[Block]) -> List[Block]:
        merged: List[Block] = []
        for off, length in blocks:
            if length <= 0:
                continue
            if merged and merged[-1][0] + merged[-1][1] == off:
                merged[-1] = (merged[-1][0], merged[-1][1] + length)
            else:
                merged.append((off, length))
        return merged

    # -- pack / unpack -------------------------------------------------------- #
    def pack(self, buffer: bytes, count: int, offset: int = 0) -> bytes:
        """Gather the data bytes of *count* elements out of *buffer*."""
        out = bytearray()
        for off, length in self.layout(count, offset):
            out += buffer[off : off + length]
        return bytes(out)

    def unpack(self, data: bytes, count: int, buffer: bytearray, offset: int = 0) -> None:
        """Scatter packed *data* into *buffer* following the typemap."""
        pos = 0
        for off, length in self.layout(count, offset):
            buffer[off : off + length] = data[pos : pos + length]
            pos += length

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{self.name} size={self._size} extent={self._extent} blocks={len(self._blocks)}>"


class BasicType(Datatype):
    """Primitive MPI type backed by a struct format character."""

    def __init__(self, name: str, fmt: str) -> None:
        nbytes = struct.calcsize(fmt)
        super().__init__(nbytes, nbytes, [(0, nbytes)])
        self.name = name
        self.fmt = fmt


MPI_BYTE = BasicType("MPI_BYTE", "B")
MPI_CHAR = BasicType("MPI_CHAR", "c")
MPI_INT = BasicType("MPI_INT", "i")
MPI_LONG = BasicType("MPI_LONG", "q")
MPI_FLOAT = BasicType("MPI_FLOAT", "f")
MPI_DOUBLE = BasicType("MPI_DOUBLE", "d")


# --------------------------------------------------------------------------- #
# constructors
# --------------------------------------------------------------------------- #
def create_contiguous(count: int, oldtype: Datatype, name: str = "contiguous") -> Datatype:
    """``MPI_Type_contiguous``: *count* copies of *oldtype* back to back."""
    if count < 1:
        raise ValueError("count must be >= 1")
    blocks: List[Block] = []
    for i in range(count):
        base = i * oldtype.extent
        blocks.extend((base + off, length) for off, length in oldtype.blocks())
    dt = Datatype(count * oldtype.size, count * oldtype.extent, blocks)
    dt.name = name
    return dt


def create_vector(
    count: int, blocklength: int, stride: int, oldtype: Datatype, name: str = "vector"
) -> Datatype:
    """``MPI_Type_vector``: *count* blocks of *blocklength* elements separated
    by *stride* elements (stride measured in elements of *oldtype*)."""
    if count < 1 or blocklength < 1:
        raise ValueError("count and blocklength must be >= 1")
    if stride < blocklength:
        raise ValueError("stride must be >= blocklength")
    blocks: List[Block] = []
    for i in range(count):
        base = i * stride * oldtype.extent
        for j in range(blocklength):
            inner = base + j * oldtype.extent
            blocks.extend((inner + off, length) for off, length in oldtype.blocks())
    size = count * blocklength * oldtype.size
    extent = ((count - 1) * stride + blocklength) * oldtype.extent
    dt = Datatype(size, extent, blocks)
    dt.name = name
    return dt


def create_indexed(
    blocklengths: Sequence[int],
    displacements: Sequence[int],
    oldtype: Datatype,
    name: str = "indexed",
) -> Datatype:
    """``MPI_Type_indexed``: variable-length blocks at arbitrary element
    displacements.  This is the constructor the paper uses for non-contiguous
    polygon reads: the preprocessed vertex-count and displacement arrays feed
    straight into it."""
    if len(blocklengths) != len(displacements):
        raise ValueError("blocklengths and displacements must have equal length")
    if len(blocklengths) == 0:
        raise ValueError("at least one block is required")
    blocks: List[Block] = []
    size = 0
    max_end = 0
    for bl, disp in zip(blocklengths, displacements):
        if bl < 0 or disp < 0:
            raise ValueError("blocklengths and displacements must be non-negative")
        base = disp * oldtype.extent
        for j in range(bl):
            inner = base + j * oldtype.extent
            blocks.extend((inner + off, length) for off, length in oldtype.blocks())
        size += bl * oldtype.size
        max_end = max(max_end, (disp + bl) * oldtype.extent)
    dt = Datatype(size, max_end, blocks)
    dt.name = name
    return dt


def create_struct(
    blocklengths: Sequence[int],
    displacements: Sequence[int],
    types: Sequence[Datatype],
    name: str = "struct",
) -> Datatype:
    """``MPI_Type_create_struct``: heterogeneous members at byte displacements.

    Figure 12's ``MPI_Type_struct`` MBR record is
    ``create_struct([4], [0], [MPI_FLOAT])`` with the extent padded to the C
    struct size by the caller if needed.
    """
    if not (len(blocklengths) == len(displacements) == len(types)):
        raise ValueError("blocklengths, displacements and types must have equal length")
    if len(types) == 0:
        raise ValueError("at least one member is required")
    blocks: List[Block] = []
    size = 0
    max_end = 0
    for bl, disp, dt_member in zip(blocklengths, displacements, types):
        if bl < 0 or disp < 0:
            raise ValueError("blocklengths and displacements must be non-negative")
        for j in range(bl):
            base = disp + j * dt_member.extent
            blocks.extend((base + off, length) for off, length in dt_member.blocks())
        size += bl * dt_member.size
        max_end = max(max_end, disp + bl * dt_member.extent)
    dt = Datatype(size, max_end, blocks)
    dt.name = name
    return dt
