"""Figure 10 — message-based dynamic file partitioning vs overlapping (halo)
reads for the Lakes layer (9 GB), three stripe counts, 32 MB blocks.

Paper shape: the message-based algorithm wins across the board because the
overhead of reading an extra 11 MB halo per process per iteration exceeds the
cost of exchanging the missing coordinates.
"""

from repro.bench import message_vs_overlap_figure

FILE_SIZE = 9 << 30
NODE_COUNTS = [2, 4, 8, 16, 32]
STRIPE_COUNTS = [16, 32, 64]


def test_fig10_message_vs_overlap(once):
    report = once(
        message_vs_overlap_figure,
        FILE_SIZE,
        32 << 20,
        STRIPE_COUNTS,
        NODE_COUNTS,
    )
    report.print()

    for ost in STRIPE_COUNTS:
        msg = dict(zip(*[report.series_by_label(f"message OST={ost}").x,
                         report.series_by_label(f"message OST={ost}").y]))
        ovl = dict(zip(*[report.series_by_label(f"overlap OST={ost}").x,
                         report.series_by_label(f"overlap OST={ost}").y]))
        # the message-based strategy is faster for every node count
        for nodes in NODE_COUNTS:
            assert msg[nodes] < ovl[nodes], (
                f"message-based partitioning should beat overlap at {nodes} nodes / {ost} OSTs"
            )
