#!/usr/bin/env python
"""Serving queries from the persistent datastore (`repro.store`).

The paper's pipeline re-reads, re-parses, re-partitions and re-indexes the
raw dataset on every run.  This example bulk-loads a synthetic "lakes" layer
into a `SpatialDataStore` once, then serves a batch of range queries three
ways and compares them:

* **from scratch** — parse the WKT file and bulk-build an STR-tree, the
  one-shot pipeline's cost, paid on every run;
* **cold store**  — open the store (manifest + page directory + packed
  index, no parsing, no tree build) and run the batch, faulting pages in;
* **warm store**  — run the same batch again, served from the page cache.

Run it with::

    python examples/datastore_serving.py
"""

from __future__ import annotations

import tempfile
import time

from repro.core import RangeQuery, VectorIO
from repro.datasets import generate_dataset, random_envelopes
from repro.index import STRtree
from repro.pfs import LustreFilesystem
from repro.store import SpatialDataStore, bulk_load

NUM_QUERIES = 60


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-store-") as root:
        fs = LustreFilesystem(root, ost_count=16)
        path = generate_dataset(fs, "lakes", scale=0.5)
        print(f"dataset: {path} ({fs.file_size(path) / 1024:.1f} KiB)")

        # ---------------------------------------------------------------- #
        # one-time bulk load (the preprocessing step of §4.1, made durable)
        # ---------------------------------------------------------------- #
        geometries = VectorIO(fs).sequential_read(path).geometries
        t0 = time.perf_counter()
        result = bulk_load(fs, "lakes", geometries, num_partitions=16, page_size=4096)
        load_wall = time.perf_counter() - t0
        print(
            f"bulk load: {result.num_records} records -> {result.num_pages} pages "
            f"in {result.num_partitions} partitions "
            f"({result.data_bytes / 1024:.1f} KiB data, "
            f"{result.index_bytes / 1024:.1f} KiB index) in {load_wall * 1e3:.1f} ms"
        )

        queries = [
            (i, env)
            for i, env in enumerate(
                random_envelopes(NUM_QUERIES, extent=result.manifest.extent,
                                 max_size_fraction=0.1, seed=42)
            )
        ]

        # ---------------------------------------------------------------- #
        # baseline: the from-scratch path every run of the pipeline pays
        # ---------------------------------------------------------------- #
        t0 = time.perf_counter()
        report = VectorIO(fs).sequential_read(path)
        tree = STRtree((g.envelope, g) for g in report.geometries)
        scratch_matches = sum(len(tree.query(env)) for _, env in queries)
        scratch_wall = time.perf_counter() - t0

        # ---------------------------------------------------------------- #
        # cold store: open + query (no parsing, no index build)
        # ---------------------------------------------------------------- #
        t0 = time.perf_counter()
        store = SpatialDataStore.open(fs, "lakes", cache_pages=256)
        rq = RangeQuery(fs, queries)
        cold_matches = len(rq.execute_from_store(store))
        cold_wall = time.perf_counter() - t0
        cold = store.stats.as_dict()

        # ---------------------------------------------------------------- #
        # warm store: identical batch, served from the page cache
        # ---------------------------------------------------------------- #
        t0 = time.perf_counter()
        warm_matches = len(rq.execute_from_store(store))
        warm_wall = time.perf_counter() - t0
        warm = store.stats.as_dict()

        print(f"\n{'path':<14} {'wall (ms)':>10} {'matches':>8} {'pages read':>11}")
        print("-" * 47)
        print(f"{'from scratch':<14} {scratch_wall * 1e3:>10.1f} {scratch_matches:>8} {'n/a':>11}")
        print(f"{'cold store':<14} {cold_wall * 1e3:>10.1f} {cold_matches:>8} {cold['pages_read']:>11.0f}")
        warm_pages = warm["pages_read"] - cold["pages_read"]
        print(f"{'warm store':<14} {warm_wall * 1e3:>10.1f} {warm_matches:>8} {warm_pages:>11.0f}")

        print(
            f"\ncache: {warm['cache_hits']:.0f} hits / {warm['cache_misses']:.0f} misses "
            f"(hit rate {warm['cache_hit_rate']:.1%}), "
            f"simulated I/O {warm['io_seconds'] * 1e3:.2f} ms total"
        )
        print(
            f"warm speedup vs from-scratch: {scratch_wall / max(warm_wall, 1e-9):.1f}x "
            f"(exact matches served: {warm_matches})"
        )
        store.close()


if __name__ == "__main__":
    main()
