"""Trace exporters: JSONL span logs and Chrome ``trace_event`` files.

Two formats, two audiences:

* :func:`write_jsonl` — one span dict per line, the machine-readable
  archive format (greppable, streamable, schema-checked by
  ``scripts/check_trace_schema.py``).
* :func:`write_chrome_trace` — the Trace Event Format consumed by
  ``chrome://tracing`` and Perfetto: each span becomes a complete ("X")
  event with microsecond timestamps, one row (``tid``) per rank, so a
  4-rank sharded query renders as four aligned timelines under one trace.

Exporters write through plain ``open()`` — traces are artifacts for the
developer's real filesystem, not data charged to the simulated one.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Sequence, Union

from .trace import Span, as_span_dicts

__all__ = [
    "chrome_trace",
    "spans_to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
]

SpanLike = Union[Span, Mapping[str, Any]]


def spans_to_jsonl(spans: Sequence[SpanLike]) -> str:
    """One JSON object per line, sorted by (start, span id)."""
    rows = sorted(as_span_dicts(spans), key=lambda s: (s["start"], s["span_id"]))
    return "".join(json.dumps(row, sort_keys=True) + "\n" for row in rows)


def write_jsonl(spans: Sequence[SpanLike], path) -> str:
    text = spans_to_jsonl(spans)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return str(path)


def chrome_trace(spans: Sequence[SpanLike]) -> Dict[str, Any]:
    """Spans as a Chrome Trace Event Format document.

    Timestamps are seconds on the virtual clock (or tracer ticks); the
    trace_event ``ts``/``dur`` unit is microseconds, so both scale by 1e6.
    ``pid`` carries the trace id's ordinal (one process group per trace),
    ``tid`` the rank, which is how per-rank spans of one distributed query
    line up as parallel rows.
    """
    events: List[Dict[str, Any]] = []
    trace_ids: List[str] = []
    rows = sorted(as_span_dicts(spans), key=lambda s: (s["start"], s["span_id"]))
    for row in rows:
        if row["trace_id"] not in trace_ids:
            trace_ids.append(row["trace_id"])
        args = dict(row["attrs"])
        args["span_id"] = row["span_id"]
        if row["parent_id"] is not None:
            args["parent_id"] = row["parent_id"]
        events.append(
            {
                "name": row["name"],
                "cat": row["trace_id"],
                "ph": "X",
                "ts": row["start"] * 1e6,
                "dur": max(0.0, (row["end"] - row["start"]) * 1e6),
                "pid": trace_ids.index(row["trace_id"]),
                "tid": row["rank"],
                "args": args,
            }
        )
    meta: List[Dict[str, Any]] = []
    for pid, trace_id in enumerate(trace_ids):
        meta.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": trace_id},
            }
        )
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: Sequence[SpanLike], path) -> str:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(spans), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return str(path)
