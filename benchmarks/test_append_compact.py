"""Append vs compact — per-query I/O across delta generation counts.

Not a figure of the paper: this benchmark extends the `repro.store` perf
trajectory to PR 5's mutable stores.  The same logical dataset is served
from stores in four physical states:

* **gen0** — one fresh bulk load of all records (the write-once baseline);
* **gen1 / gen4** — the same records arriving as a smaller bulk load plus
  1 / 4 incremental appends: queries plan candidates across base + deltas,
  so coalesced ``read_requests`` and ``pages_read`` grow with the
  generation count (each generation is its own container file);
* **compacted** — the gen4 store after ``compact_store``: generations are
  merged back into one SFC-packed container.

Expected shape: identical query results in every state (the acceptance
battery's equality), I/O growing with generation count, and compaction
restoring ``read_requests``/``pages_read`` to within ~10% of the fresh bulk
load — the acceptance bar of the PR.

Set ``APPEND_COMPACT_QUICK=1`` for the CI smoke variant (fewer records and
queries).
"""

import os
import random

import pytest

from repro.bench.reporting import FigureReport
from repro.datasets import random_envelopes
from repro.geometry import Envelope, LineString, Point, Polygon
from repro.store import (
    SpatialDataStore,
    StoreAppender,
    bulk_load,
    compact_store,
)

QUICK = bool(os.environ.get("APPEND_COMPACT_QUICK"))
NUM_RECORDS = 160 if QUICK else 480
NUM_QUERIES = 20 if QUICK else 60
EXTENT = Envelope(0.0, 0.0, 100.0, 100.0)
PAGE_SIZE = 1024
PARTITIONS = 16


def make_geometries(count, seed=7):
    rng = random.Random(seed)
    out = []
    for i, env in enumerate(
        random_envelopes(count, extent=EXTENT, max_size_fraction=0.05, seed=seed)
    ):
        kind = rng.random()
        if kind < 0.6:
            out.append(Polygon.from_envelope(env, userdata=i))
        elif kind < 0.85:
            out.append(LineString([(env.minx, env.miny), (env.maxx, env.maxy)],
                                  userdata=i))
        else:
            out.append(Point(env.minx, env.miny, userdata=i))
    return out


def build_store(fs, name, geoms, num_appends):
    """Load *geoms* as a base bulk load plus *num_appends* equal deltas."""
    if num_appends == 0:
        bulk_load(fs, name, geoms, num_partitions=PARTITIONS, page_size=PAGE_SIZE)
        return
    delta = len(geoms) // (num_appends + 2)  # deltas smaller than the base
    base_count = len(geoms) - num_appends * delta
    bulk_load(fs, name, geoms[:base_count], num_partitions=PARTITIONS,
              page_size=PAGE_SIZE)
    appender = StoreAppender(fs, name)
    for k in range(num_appends):
        start = base_count + k * delta
        appender.append(geoms[start:start + delta])


def serve_batch(fs, name, queries):
    """Cold-cache batch serving; returns per-query ids + I/O counters."""
    with SpatialDataStore.open(fs, name, cache_pages=1024) as store:
        per_query = store.range_query_batch(queries, exact=False)
        ids = [[h.record_id for h in hits] for hits in per_query]
        stats = store.stats.as_dict()
        generations = store.num_generations
    return ids, stats, generations


def test_append_vs_compact_io(lustre, benchmark, once):
    geoms = make_geometries(NUM_RECORDS)
    queries = [
        (i, env)
        for i, env in enumerate(
            random_envelopes(NUM_QUERIES, extent=EXTENT, max_size_fraction=0.12,
                             seed=31)
        )
    ]

    def driver():
        report = FigureReport(
            "AppendCompact",
            "Per-batch I/O at 0/1/4 delta generations vs post-compaction",
            "store state", "value",
        )
        reqs = report.add_series("read_requests")
        pages = report.add_series("pages_read")
        decoded = report.add_series("records_decoded")

        results = {}
        for label, appends in (("gen0", 0), ("gen1", 1), ("gen4", 4)):
            name = f"bench_mut_{label}"
            build_store(lustre, name, geoms, appends)
            ids, stats, generations = serve_batch(lustre, name, queries)
            assert generations == appends
            results[label] = (ids, stats)
            reqs.add(label, stats["read_requests"])
            pages.add(label, stats["pages_read"])
            decoded.add(label, stats["records_decoded"])

        compaction = compact_store(lustre, "bench_mut_gen4")
        ids, stats, generations = serve_batch(lustre, "bench_mut_gen4", queries)
        assert generations == 0 and compaction.merged_generations == 4
        results["compacted"] = (ids, stats)
        reqs.add("compacted", stats["read_requests"])
        pages.add("compacted", stats["pages_read"])
        decoded.add("compacted", stats["records_decoded"])

        report.note(
            f"{NUM_RECORDS} records, {NUM_QUERIES} queries; gen4: "
            f"{results['gen4'][1]['read_requests']:.0f} requests vs "
            f"{results['gen0'][1]['read_requests']:.0f} fresh, compacted: "
            f"{results['compacted'][1]['read_requests']:.0f}"
        )
        return report, results

    report, results = once(driver)
    report.print()

    # equality first: every physical state answers identically
    fresh_ids = results["gen0"][0]
    for label in ("gen1", "gen4", "compacted"):
        assert results[label][0] == fresh_ids, f"{label} diverged from fresh"
    assert sum(len(ids) for ids in fresh_ids) > 0

    fresh = results["gen0"][1]
    gen4 = results["gen4"][1]
    compacted = results["compacted"][1]

    # generations cost I/O: more containers, more read requests
    assert gen4["read_requests"] >= fresh["read_requests"]
    assert gen4["pages_read"] >= fresh["pages_read"]

    # the acceptance bar: compaction restores per-query I/O to within ~10%
    # of a fresh bulk load of the same records
    for key in ("read_requests", "pages_read"):
        assert compacted[key] <= fresh[key] * 1.1, (
            f"compacted {key}={compacted[key]:.0f} vs fresh {fresh[key]:.0f}"
        )

    benchmark.extra_info["records"] = NUM_RECORDS
    benchmark.extra_info["queries"] = NUM_QUERIES
    for label, (_ids, stats) in results.items():
        benchmark.extra_info[label] = {
            "read_requests": float(stats["read_requests"]),
            "pages_read": float(stats["pages_read"]),
            "records_decoded": float(stats["records_decoded"]),
            "bytes_read": float(stats["bytes_read"]),
        }


def test_append_write_amplification(lustre, benchmark, once):
    """Appending writes only the delta, not the base container."""

    def driver():
        geoms = make_geometries(NUM_RECORDS, seed=13)
        half = len(geoms) // 2
        result = bulk_load(lustre, "bench_mut_amp", geoms[:half],
                           num_partitions=PARTITIONS, page_size=PAGE_SIZE)
        append = StoreAppender(lustre, "bench_mut_amp").append(geoms[half:])
        return result, append

    result, append = once(driver)
    # the delta holds half the records but the append never rewrote the
    # base container: delta bytes stay well below a full re-bulk-load
    assert 0 < append.data_bytes < result.data_bytes * 1.5
    assert append.num_records == NUM_RECORDS - NUM_RECORDS // 2
    benchmark.extra_info["base_data_bytes"] = float(result.data_bytes)
    benchmark.extra_info["delta_data_bytes"] = float(append.data_bytes)
    benchmark.extra_info["delta_write_seconds"] = float(append.write_seconds)
