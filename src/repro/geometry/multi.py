"""Multi-part geometries and geometry collections."""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Tuple

from .base import Geometry
from .envelope import Envelope
from .linestring import LineString
from .point import Point
from .polygon import Polygon

__all__ = [
    "GeometryCollection",
    "MultiPoint",
    "MultiLineString",
    "MultiPolygon",
]


class GeometryCollection(Geometry):
    """Heterogeneous collection of geometries."""

    __slots__ = ("geoms", "_envelope")

    geom_type = "GeometryCollection"
    _member_type: type = Geometry

    def __init__(self, geoms: Iterable[Geometry] = (), userdata: Any = None) -> None:
        super().__init__(userdata)
        members: List[Geometry] = []
        for g in geoms:
            if not isinstance(g, self._member_type):
                raise TypeError(
                    f"{self.geom_type} members must be {self._member_type.__name__}, "
                    f"got {type(g).__name__}"
                )
            members.append(g)
        self.geoms: Tuple[Geometry, ...] = tuple(members)
        env = Envelope.empty()
        for g in self.geoms:
            env = env.union(g.envelope)
        self._envelope = env

    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[Geometry]:
        return iter(self.geoms)

    def __len__(self) -> int:
        return len(self.geoms)

    def __getitem__(self, idx: int) -> Geometry:
        return self.geoms[idx]

    @property
    def envelope(self) -> Envelope:
        return self._envelope

    @property
    def is_empty(self) -> bool:
        return len(self.geoms) == 0

    @property
    def num_points(self) -> int:
        return sum(g.num_points for g in self.geoms)

    @property
    def area(self) -> float:
        return sum(g.area for g in self.geoms)

    @property
    def length(self) -> float:
        return sum(g.length for g in self.geoms)

    def wkt(self) -> str:
        if self.is_empty:
            return "GEOMETRYCOLLECTION EMPTY"
        inner = ", ".join(g.wkt() for g in self.geoms)
        return f"GEOMETRYCOLLECTION ({inner})"


class MultiPoint(GeometryCollection):
    """Collection of points."""

    __slots__ = ()
    geom_type = "MultiPoint"
    _member_type = Point

    def wkt(self) -> str:
        from .wkt import format_coord

        if self.is_empty:
            return "MULTIPOINT EMPTY"
        inner = ", ".join(f"({format_coord(p.coord)})" for p in self.geoms)  # type: ignore[attr-defined]
        return f"MULTIPOINT ({inner})"


class MultiLineString(GeometryCollection):
    """Collection of linestrings."""

    __slots__ = ()
    geom_type = "MultiLineString"
    _member_type = LineString

    def wkt(self) -> str:
        from .wkt import format_coords

        if self.is_empty:
            return "MULTILINESTRING EMPTY"
        inner = ", ".join(f"({format_coords(ls.coords)})" for ls in self.geoms)  # type: ignore[attr-defined]
        return f"MULTILINESTRING ({inner})"


class MultiPolygon(GeometryCollection):
    """Collection of polygons (how OSM represents e.g. lake systems)."""

    __slots__ = ()
    geom_type = "MultiPolygon"
    _member_type = Polygon

    def wkt(self) -> str:
        from .wkt import format_coords

        if self.is_empty:
            return "MULTIPOLYGON EMPTY"
        polys = []
        for poly in self.geoms:
            assert isinstance(poly, Polygon)
            rings = [f"({format_coords(poly.shell.coords)})"]
            rings.extend(f"({format_coords(h.coords)})" for h in poly.holes)
            polys.append(f"({', '.join(rings)})")
        return f"MULTIPOLYGON ({', '.join(polys)})"
