"""End-to-end datastore tests: bulk load, exact round-trip, pruning, serving.

The acceptance bar of the subsystem lives here: a bulk-loaded dataset
round-trips exactly (geometries and index), and a warm range query decodes
only the pages it touches — asserted via cache statistics.
"""

import pytest

from repro.core import RangeQuery, join_with_store
from repro.core.join import join_cell
from repro.datasets import SyntheticConfig, generate_dataset, random_envelopes
from repro.core.reader import VectorIO
from repro.geometry import Envelope, Point, Polygon, predicates
from repro.index import GridCell
from repro.pfs import LustreFilesystem
from repro.store import SpatialDataStore, StoreFormatError, bulk_load


@pytest.fixture(scope="module")
def fs(tmp_path_factory):
    return LustreFilesystem(tmp_path_factory.mktemp("storefs"), ost_count=8)


@pytest.fixture(scope="module")
def lakes(fs):
    # explicit seed: the generator's default derives from hash(name), which
    # PYTHONHASHSEED randomises per process
    path = generate_dataset(fs, "lakes", scale=0.25, config=SyntheticConfig(seed=1234))
    return VectorIO(fs).sequential_read(path).geometries


@pytest.fixture(scope="module")
def lakes_store(fs, lakes):
    bulk_load(fs, "lakes", lakes, num_partitions=16, page_size=2048)
    return SpatialDataStore.open(fs, "lakes", cache_pages=1024)


def brute_force_range(geoms, env, exact=True):
    window = Polygon.from_envelope(env)
    out = []
    for rid, g in enumerate(geoms):
        if g.envelope.is_empty or not g.envelope.intersects(env):
            continue
        if exact and not predicates.intersects(window, g):
            continue
        out.append(rid)
    return out


class TestRoundTrip:
    def test_every_record_round_trips_exactly(self, lakes, lakes_store):
        scanned = list(lakes_store.scan())
        assert len(scanned) == len(lakes)
        for rid, geom in scanned:
            assert geom.wkt() == lakes[rid].wkt()
            assert geom.userdata == lakes[rid].userdata

    def test_index_round_trips(self, lakes, lakes_store):
        # the persisted index answers exactly like a freshly built one
        assert len(lakes_store.index) == sum(
            p.record_count for p in lakes_store.manifest.partitions
        )
        for env in random_envelopes(10, extent=lakes_store.extent, max_size_fraction=0.3, seed=1):
            got = [h.record_id for h in lakes_store.range_query(env, exact=False)]
            assert got == brute_force_range(lakes, env, exact=False)

    def test_metadata_consistency(self, lakes, lakes_store):
        assert len(lakes_store) == len(lakes)
        assert lakes_store.num_pages == lakes_store.manifest.num_pages
        total_pages = sum(len(p.page_ids) for p in lakes_store.manifest.partitions)
        assert total_pages == lakes_store.num_pages


class TestRangeQuery:
    def test_matches_brute_force(self, lakes, lakes_store):
        for env in random_envelopes(25, extent=lakes_store.extent, max_size_fraction=0.15, seed=9):
            got = [h.record_id for h in lakes_store.range_query(env)]
            assert got == brute_force_range(lakes, env)

    def test_geometry_window(self, lakes, lakes_store):
        env = next(iter(random_envelopes(1, extent=lakes_store.extent, max_size_fraction=0.2, seed=4)))
        window = Polygon.from_envelope(env)
        via_env = [h.record_id for h in lakes_store.range_query(env)]
        via_geom = [h.record_id for h in lakes_store.range_query(window)]
        assert via_env == via_geom

    def test_empty_window(self, lakes_store):
        assert lakes_store.range_query(Envelope.empty()) == []

    def test_disjoint_window_touches_no_page(self, fs, lakes):
        bulk_load(fs, "lakes_disjoint", lakes, num_partitions=16, page_size=2048)
        store = SpatialDataStore.open(fs, "lakes_disjoint")
        far = Envelope(1e6, 1e6, 1e6 + 1, 1e6 + 1)
        assert store.range_query(far) == []
        assert store.stats.pages_read == 0
        assert store.stats.cache.accesses == 0

    def test_replicas_deduplicated(self, fs):
        # one geometry spanning the whole grid is replicated to every
        # partition but must be reported once
        big = Polygon([(0, 0), (100, 0), (100, 100), (0, 100), (0, 0)], userdata="big")
        points = [Point(x + 0.5, y + 0.5) for x in range(10) for y in range(10)]
        bulk_load(fs, "dedup", [big] + points, num_partitions=16, page_size=512)
        store = SpatialDataStore.open(fs, "dedup")
        replicas = sum(p.record_count for p in store.manifest.partitions)
        assert replicas > len(points) + 1  # replication actually happened
        hits = store.range_query(Envelope(0, 0, 100, 100))
        assert len(hits) == len(points) + 1
        assert [h.record_id for h in hits] == list(range(len(points) + 1))


class TestPageCacheBehaviour:
    def test_warm_query_decodes_only_touched_pages(self, fs, lakes):
        bulk_load(fs, "lakes_cache", lakes, num_partitions=16, page_size=2048)
        store = SpatialDataStore.open(fs, "lakes_cache", cache_pages=1024)
        # a window around an actual record guarantees at least one hit
        env = lakes[len(lakes) // 2].envelope.buffer(0.5)

        cold_hits = store.range_query(env)
        cold_misses = store.stats.cache.misses
        cold_io = store.stats.io_seconds
        assert cold_hits
        # only intersecting pages were fetched, never the whole container
        assert 0 < cold_misses < store.num_pages
        assert store.stats.pages_read == cold_misses

        warm_hits = store.range_query(env)
        assert [h.record_id for h in warm_hits] == [h.record_id for h in cold_hits]
        # the warm query is served entirely from the cache: no new miss,
        # no new page read, no new simulated I/O
        assert store.stats.cache.misses == cold_misses
        assert store.stats.pages_read == cold_misses
        assert store.stats.io_seconds == cold_io
        assert store.stats.cache.hits >= cold_misses

    def test_tiny_cache_evicts_and_still_answers(self, fs, lakes):
        bulk_load(fs, "lakes_tiny", lakes, num_partitions=16, page_size=2048)
        store = SpatialDataStore.open(fs, "lakes_tiny", cache_pages=2)
        for env in random_envelopes(5, extent=store.extent, max_size_fraction=0.2, seed=2):
            got = [h.record_id for h in store.range_query(env)]
            assert got == brute_force_range(lakes, env)
        assert store.stats.cache.evictions > 0


class TestJoinServing:
    def test_join_matches_join_cell(self, fs, lakes, lakes_store):
        probe_path = generate_dataset(fs, "cemetery", scale=0.5, config=SyntheticConfig(seed=99))
        probes = VectorIO(fs).sequential_read(probe_path).geometries

        pairs = join_with_store(lakes_store, probes)
        got = sorted((id(p), h.wkt()) for p, h in ((pair.left, pair.right) for pair in pairs))

        # sequential reference: one giant cell covering everything, no dedup
        cell = GridCell(0, 0, 0, Envelope(-1e9, -1e9, 1e9, 1e9))
        expected = join_cell(cell, probes, lakes, deduplicate=False)
        want = sorted((id(p.left), p.right.wkt()) for p in expected)
        assert got == want

    def test_join_store_method_uses_predicate(self, fs, lakes, lakes_store):
        from repro.core import SpatialJoin

        probes = [Point(0, 0)]  # far corner; contains-style predicate
        join = SpatialJoin(fs, predicate=predicates.contains)
        pairs = join.join_store(lakes_store, probes)
        for pair in pairs:
            assert predicates.contains(pair.left, pair.right)


class TestQueryServing:
    def test_execute_from_store_matches_brute_force(self, lakes, lakes_store):
        queries = [
            (f"q{i}", env)
            for i, env in enumerate(
                random_envelopes(8, extent=lakes_store.extent, max_size_fraction=0.2, seed=13)
            )
        ]
        rq = RangeQuery(lakes_store.fs, queries)
        matches = rq.execute_from_store(lakes_store)
        by_query = {}
        for m in matches:
            by_query.setdefault(m.query_id, []).append(m.geometry.wkt())
        for qid, env in queries:
            want = [lakes[rid].wkt() for rid in brute_force_range(lakes, env)]
            assert by_query.get(qid, []) == want


class TestOpenValidation:
    def test_open_missing_store_raises(self, fs):
        with pytest.raises(FileNotFoundError, match="bulk_load"):
            SpatialDataStore.open(fs, "no_such_store")

    def test_corrupt_header_raises(self, fs, lakes):
        bulk_load(fs, "lakes_corrupt", lakes, num_partitions=4, page_size=2048)
        data_path = "stores/lakes_corrupt/data.bin"
        with fs.open(data_path, "r+") as fh:
            fh.pwrite(0, b"XXXXXXXX")
        with pytest.raises(StoreFormatError):
            SpatialDataStore.open(fs, "lakes_corrupt")

    def test_context_manager(self, fs, lakes):
        bulk_load(fs, "lakes_ctx", lakes, num_partitions=4, page_size=2048)
        with SpatialDataStore.open(fs, "lakes_ctx") as store:
            assert store.range_query(store.extent)
        assert store._handle is None


class TestBulkLoad:
    def test_empty_dataset(self, fs):
        result = bulk_load(fs, "empty", [])
        assert result.num_records == 0
        store = SpatialDataStore.open(fs, "empty")
        assert len(store) == 0
        assert store.range_query(Envelope(0, 0, 1, 1)) == []
        assert list(store.scan()) == []

    def test_single_geometry(self, fs):
        result = bulk_load(fs, "single", [Point(3, 4, userdata="only")])
        assert result.num_records == 1
        store = SpatialDataStore.open(fs, "single")
        hits = store.range_query(Envelope(0, 0, 10, 10))
        assert len(hits) == 1
        assert hits[0].geometry.userdata == "only"

    def test_skips_empty_geometries(self, fs):
        from repro.geometry import MultiPoint

        result = bulk_load(fs, "with_empty", [Point(1, 1), MultiPoint([])])
        assert result.num_records == 1
        assert result.skipped_empty == 1

    def test_page_size_respected(self, fs, lakes):
        result = bulk_load(fs, "lakes_pagesz", lakes, num_partitions=8, page_size=1024)
        store = SpatialDataStore.open(fs, "lakes_pagesz")
        oversized = [m for m in store.pages if m.nbytes > 1024 + 4 and m.count > 1]
        assert not oversized  # only single-record pages may exceed the target
        assert result.num_pages == store.num_pages

    def test_bulk_load_classmethod(self, fs):
        store, result = SpatialDataStore.bulk_load(fs, "clsmethod", [Point(0, 0), Point(1, 1)])
        assert len(store) == 2
        assert result.num_records == 2

    def test_rejects_tiny_page_size(self, fs):
        with pytest.raises(ValueError):
            bulk_load(fs, "bad", [Point(0, 0)], page_size=8)

    def test_write_seconds_accounted(self, fs, lakes):
        result = bulk_load(fs, "lakes_ws", lakes)
        assert result.write_seconds > 0
