"""Unit tests of the store's I/O scheduler (`repro.store.scheduler`).

The scheduler is the engine's I/O stage: it must coalesce exactly like the
pre-engine serving path (gap-tolerant runs, negative gap disables merging),
clamp readahead at the container boundary and at cached pages, and — under
the cost-model policy — derive its knobs from the striping layout so the
serving path finally consults the paper's central I/O insight.
"""

import pytest

from repro.geometry import Envelope
from repro.pfs import IOCostModel, StripeLayout
from repro.store import IOScheduler, ScheduledRun, cost_model_gap
from repro.store.format import PageMeta


def make_pages(sizes, start=64, gaps=None):
    """Contiguous PageMeta list (optional per-boundary byte gaps)."""
    pages = []
    offset = start
    for i, size in enumerate(sizes):
        if gaps and i > 0:
            offset += gaps[i - 1]
        pages.append(
            PageMeta(page_id=i, offset=offset, nbytes=size, count=1,
                     mbr=Envelope(0, 0, 1, 1))
        )
        offset += size
    return pages


class TestCoalescing:
    def test_adjacent_pages_merge_into_one_run(self):
        pages = make_pages([100] * 6)
        sched = IOScheduler(pages, gap=0).schedule([0, 1, 2, 3, 4, 5])
        assert len(sched.runs) == 1
        assert sched.runs[0].page_ids == (0, 1, 2, 3, 4, 5)
        assert sched.total_bytes == 600

    def test_gap_splits_runs(self):
        # pages 0-1 adjacent, then a 50-byte hole before pages 2-3
        pages = make_pages([100] * 4, gaps=[0, 50, 0])
        sched = IOScheduler(pages, gap=0).schedule([0, 1, 2, 3])
        assert [run.page_ids for run in sched.runs] == [(0, 1), (2, 3)]
        # a tolerant gap re-merges them (and pays the 50 wasted bytes)
        sched = IOScheduler(pages, gap=50).schedule([0, 1, 2, 3])
        assert len(sched.runs) == 1
        assert sched.total_bytes == 450

    def test_negative_gap_disables_merging(self):
        pages = make_pages([100] * 4)
        sched = IOScheduler(pages, gap=-1).schedule([0, 1, 2, 3])
        assert len(sched.runs) == 4
        assert all(len(run.page_ids) == 1 for run in sched.runs)

    def test_skipped_page_counts_as_gap(self):
        # demanding 0 and 2 leaves page 1's bytes as the gap between runs
        pages = make_pages([100] * 3)
        assert len(IOScheduler(pages, gap=0).schedule([0, 2]).runs) == 2
        assert len(IOScheduler(pages, gap=100).schedule([0, 2]).runs) == 1

    def test_empty_schedule(self):
        sched = IOScheduler(make_pages([100]), gap=0).schedule([])
        assert sched.runs == []
        assert sched.total_bytes == 0
        assert sched.num_prefetched == 0


class TestReadRequestConsistency:
    def test_nbytes_matches_runs(self):
        pages = make_pages([100, 200, 50, 400], gaps=[0, 1000, 0])
        sched = IOScheduler(pages, gap=0).schedule([0, 1, 2, 3])
        req = sched.read_request()
        assert req.nbytes == sched.total_bytes == sum(r.nbytes for r in sched.runs)
        assert req.num_requests == len(sched.runs)
        assert req.ranges == sched.ranges

    def test_ranges_cover_exactly_the_scheduled_pages(self):
        pages = make_pages([100] * 5)
        sched = IOScheduler(pages, gap=0).schedule([1, 2, 4])
        covered = []
        for run in sched.runs:
            for pid in run.page_ids:
                meta = pages[pid]
                assert run.offset <= meta.offset
                assert meta.offset + meta.nbytes <= run.offset + run.nbytes
                covered.append(pid)
        assert covered == [1, 2, 4]


class TestFixedReadahead:
    def test_extends_final_run(self):
        pages = make_pages([100] * 8)
        sched = IOScheduler(pages, gap=0, prefetch_pages=3).schedule([0, 1])
        assert sched.runs[-1].page_ids == (0, 1, 2, 3, 4)
        assert sched.num_prefetched == 3
        assert sched.runs[-1].demand_ids == (0, 1)

    def test_clamps_at_container_boundary(self):
        # demanding the last page leaves nothing to read ahead: the run must
        # never extend into the page directory that follows the payloads
        pages = make_pages([100] * 4)
        sched = IOScheduler(pages, gap=0, prefetch_pages=8).schedule([3])
        assert sched.num_prefetched == 0
        last = pages[-1]
        assert sched.runs[-1].offset + sched.runs[-1].nbytes == last.offset + last.nbytes

    def test_partial_clamp_near_the_end(self):
        pages = make_pages([100] * 4)
        sched = IOScheduler(pages, gap=0, prefetch_pages=8).schedule([2])
        assert sched.num_prefetched == 1  # only page 3 exists past the frontier
        assert sched.runs[-1].page_ids == (2, 3)

    def test_stops_at_cached_page(self):
        pages = make_pages([100] * 6)
        sched = IOScheduler(pages, gap=0, prefetch_pages=4).schedule(
            [0], is_cached=lambda pid: pid == 2
        )
        assert sched.runs[-1].page_ids == (0, 1)
        assert sched.num_prefetched == 1

    def test_disabled_when_not_allowed(self):
        pages = make_pages([100] * 6)
        sched = IOScheduler(pages, gap=0, prefetch_pages=4).schedule(
            [0], allow_prefetch=False
        )
        assert sched.num_prefetched == 0

    def test_rejects_negative_depth(self):
        with pytest.raises(ValueError):
            IOScheduler(make_pages([100]), gap=0, prefetch_pages=-1)


class TestCostModelPolicy:
    def setup_method(self):
        self.model = IOCostModel()

    def test_break_even_gap_formula(self):
        layout = StripeLayout(stripe_size=1 << 20, stripe_count=4)
        expected = int(
            (self.model.ost_latency + self.model.request_overhead)
            * self.model.ost_bandwidth
        )
        assert cost_model_gap(layout, self.model) == min(expected, 1 << 20)

    def test_gap_capped_at_one_stripe(self):
        tiny = StripeLayout(stripe_size=4096, stripe_count=4)
        assert cost_model_gap(tiny, self.model) == 4096

    def test_cost_aware_uses_derived_gap_unless_overridden(self):
        pages = make_pages([100] * 4)
        layout = StripeLayout(stripe_size=1 << 20, stripe_count=4)
        auto = IOScheduler.cost_aware(pages, layout, self.model)
        assert auto.gap == cost_model_gap(layout, self.model)
        assert auto.is_cost_aware
        explicit = IOScheduler.cost_aware(pages, layout, self.model, gap=7)
        assert explicit.gap == 7

    def test_readahead_extends_to_stripe_boundary(self):
        # 100-byte pages from offset 64; stripe size 512: the first stripe
        # ends at 512, so a demand for page 0 (ends at 164) reads ahead
        # pages 1..3 (ends 264, 364, 464) but not page 4 (would end at 564)
        pages = make_pages([100] * 8)
        layout = StripeLayout(stripe_size=512, stripe_count=2)
        sched = IOScheduler.cost_aware(pages, layout, self.model, gap=0).schedule([0])
        assert sched.runs[-1].page_ids == (0, 1, 2, 3)
        assert sched.num_prefetched == 3
        end = sched.runs[-1].offset + sched.runs[-1].nbytes
        assert end <= 512

    def test_no_readahead_at_stripe_boundary(self):
        # pages of 64 bytes: page 3 ends exactly at offset 320... use sizes
        # that land a frontier on the boundary
        pages = make_pages([448, 100, 100])  # page 0: 64..512 (boundary)
        layout = StripeLayout(stripe_size=512, stripe_count=2)
        sched = IOScheduler.cost_aware(pages, layout, self.model, gap=0).schedule([0])
        assert sched.num_prefetched == 0

    def test_prefetch_limit_clamps_depth(self):
        pages = make_pages([10] * 40)
        layout = StripeLayout(stripe_size=1 << 20, stripe_count=2)
        sched = IOScheduler.cost_aware(
            pages, layout, self.model, gap=0, prefetch_limit=5
        ).schedule([0])
        assert sched.num_prefetched == 5

    def test_cache_capacity_guard_spares_demand_pages(self):
        # a fetch's readahead must never evict the fetch's own demand pages:
        # with capacity 8 and 3 demand pages at most 5 may be read ahead
        pages = make_pages([10] * 40)
        layout = StripeLayout(stripe_size=1 << 20, stripe_count=2)
        scheduler = IOScheduler.cost_aware(
            pages, layout, self.model, gap=0, cache_capacity=8
        )
        sched = scheduler.schedule([0, 1, 2])
        assert len(sched.runs[0].demand_ids) == 3
        assert sched.num_prefetched == 5
        # demand alone at/above capacity leaves no readahead budget at all
        assert scheduler.schedule(list(range(8))).num_prefetched == 0
        assert scheduler.schedule(list(range(12))).num_prefetched == 0

    def test_prefetch_limit_and_capacity_compose(self):
        pages = make_pages([10] * 40)
        layout = StripeLayout(stripe_size=1 << 20, stripe_count=2)
        sched = IOScheduler.cost_aware(
            pages, layout, self.model, gap=0, prefetch_limit=2, cache_capacity=8
        ).schedule([0, 1, 2])
        assert sched.num_prefetched == 2  # tighter of the two caps wins

    def test_cost_aware_respects_container_boundary(self):
        pages = make_pages([100] * 3)
        layout = StripeLayout(stripe_size=1 << 20, stripe_count=2)
        sched = IOScheduler.cost_aware(pages, layout, self.model, gap=0).schedule([2])
        assert sched.num_prefetched == 0
        last = pages[-1]
        assert sched.runs[-1].offset + sched.runs[-1].nbytes == last.offset + last.nbytes


class TestCacheGuardBothPolicies:
    """Regression battery for the cache-overflow guard: under **either**
    policy a fetch's readahead may never exceed ``cache_capacity - demand``,
    or it would evict the very demand pages the fetch was issued for.  The
    fixed policy once ignored the guard entirely (the confirmed PR 5 bug:
    ``prefetch_pages=8`` into a capacity-2 cache evicted its own demand
    pages)."""

    def _scheduler(self, policy, pages, cache_capacity, depth=8):
        if policy == "fixed":
            return IOScheduler(pages, gap=0, prefetch_pages=depth,
                               cache_capacity=cache_capacity)
        return IOScheduler.cost_aware(
            pages,
            StripeLayout(stripe_size=1 << 20, stripe_count=2),
            IOCostModel(),
            gap=0,
            prefetch_limit=depth,
            cache_capacity=cache_capacity,
        )

    @pytest.mark.parametrize("policy", ["fixed", "cost_model"])
    def test_readahead_never_exceeds_capacity_minus_demand(self, policy):
        pages = make_pages([100] * 40)
        for capacity in (1, 2, 4, 8):
            for demand in ([0], [0, 1], [0, 1, 2], list(range(6))):
                sched = self._scheduler(policy, pages, capacity).schedule(demand)
                assert sched.num_prefetched <= max(0, capacity - len(demand)), (
                    f"{policy}: {sched.num_prefetched} prefetched with "
                    f"capacity {capacity} and {len(demand)} demand pages"
                )

    def test_confirmed_repro_fixed_policy_capacity_two(self):
        # the exact repro from the issue: 8 pages of readahead into a
        # capacity-2 cache with 2 demand pages must be clamped to zero
        pages = make_pages([100] * 12)
        sched = IOScheduler(pages, gap=0, prefetch_pages=8,
                            cache_capacity=2).schedule([0, 1])
        assert sched.num_prefetched == 0
        assert sched.runs[-1].page_ids == (0, 1)

    def test_fixed_policy_partial_budget(self):
        pages = make_pages([100] * 12)
        sched = IOScheduler(pages, gap=0, prefetch_pages=8,
                            cache_capacity=6).schedule([0, 1])
        assert sched.num_prefetched == 4  # 6 - 2 demand

    def test_fixed_policy_unclamped_without_capacity(self):
        # schedulers built without a cache (capacity unknown) keep the
        # legacy behaviour: the constant depth alone
        pages = make_pages([100] * 12)
        sched = IOScheduler(pages, gap=0, prefetch_pages=8).schedule([0, 1])
        assert sched.num_prefetched == 8

    def test_demand_above_capacity_never_goes_negative(self):
        pages = make_pages([100] * 12)
        sched = IOScheduler(pages, gap=0, prefetch_pages=8,
                            cache_capacity=2).schedule([0, 1, 2, 3])
        assert sched.num_prefetched == 0


class TestScheduledRun:
    def test_demand_ids_excludes_prefetch(self):
        run = ScheduledRun(page_ids=(3, 4, 5, 6), offset=0, nbytes=400, num_prefetched=2)
        assert run.demand_ids == (3, 4)
