"""Named OSM-like datasets mirroring Table 3 of the paper.

Table 3 lists six OpenStreetMap extracts (56 MB – 137 GB).  The registry below
keeps the same names, shape types and *relative* sizes but scales the absolute
record counts with a user-chosen factor so the full benchmark matrix runs in
minutes on a laptop-class machine.  ``scale=1.0`` corresponds to the default
benchmark size (thousands of records); the paper's sizes would correspond to a
scale of roughly ``1e4``–``1e5``, far beyond this environment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from ..pfs import SimulatedFilesystem, StripeLayout
from .synthetic import (
    SyntheticConfig,
    generate_mixed_records,
    generate_point_records,
    generate_polygon_records,
    generate_polyline_records,
)

__all__ = ["DatasetSpec", "DATASETS", "generate_dataset", "dataset_path", "PAPER_TABLE3"]


@dataclass(frozen=True)
class DatasetSpec:
    """One named dataset of the evaluation."""

    name: str
    shape: str  # "polygon" | "line" | "point" | "mixed"
    #: record count at scale=1.0
    base_count: int
    #: record count in the paper (for documentation / EXPERIMENTS.md)
    paper_count: str
    #: file size in the paper
    paper_size: str
    #: paper's sequential I/O+parse time in seconds (Table 3 last column)
    paper_seq_seconds: float

    def generator(self, count: int, config: SyntheticConfig) -> Iterator[str]:
        if self.shape == "polygon":
            return generate_polygon_records(count, config)
        if self.shape == "line":
            return generate_polyline_records(count, config)
        if self.shape == "point":
            return generate_point_records(count, config)
        return generate_mixed_records(count, config)


#: Table 3 of the paper, scaled.  Relative sizes are preserved: cemetery is the
#: small layer joined against everything else, all_nodes has the most records.
DATASETS: Dict[str, DatasetSpec] = {
    "cemetery": DatasetSpec("cemetery", "polygon", base_count=400, paper_count="193 K",
                            paper_size="56 MB", paper_seq_seconds=2.1),
    "lakes": DatasetSpec("lakes", "polygon", base_count=4_000, paper_count="8 M",
                         paper_size="9 GB", paper_seq_seconds=328.0),
    "roads": DatasetSpec("roads", "polygon", base_count=10_000, paper_count="72 M",
                         paper_size="24 GB", paper_seq_seconds=786.0),
    "all_objects": DatasetSpec("all_objects", "mixed", base_count=16_000, paper_count="263 M",
                               paper_size="92 GB", paper_seq_seconds=4728.0),
    "road_network": DatasetSpec("road_network", "line", base_count=20_000, paper_count="717 M",
                                paper_size="137 GB", paper_seq_seconds=2873.0),
    "all_nodes": DatasetSpec("all_nodes", "point", base_count=30_000, paper_count="2.7 B",
                             paper_size="96 GB", paper_seq_seconds=3782.0),
}

#: ordered view matching the row order of Table 3
PAPER_TABLE3 = ["cemetery", "lakes", "roads", "all_objects", "road_network", "all_nodes"]


def dataset_path(name: str) -> str:
    """Canonical path of a named dataset inside a simulated filesystem."""
    return f"datasets/{name}.wkt"


def generate_dataset(
    fs: SimulatedFilesystem,
    name: str,
    scale: float = 1.0,
    config: Optional[SyntheticConfig] = None,
    layout: Optional[StripeLayout] = None,
    path: Optional[str] = None,
) -> str:
    """Materialise a named dataset on a simulated filesystem.

    Returns the path the file was written to.  The record count is
    ``base_count * scale`` (minimum 10).
    """
    if name not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(DATASETS)}")
    spec = DATASETS[name]
    count = max(10, int(round(spec.base_count * scale)))
    cfg = config or SyntheticConfig(seed=hash(name) % (2**31))
    records = spec.generator(count, cfg)
    payload = "\n".join(records) + "\n"
    target = path or dataset_path(name)
    fs.create_file(target, payload.encode("utf-8"), layout=layout)
    return target
