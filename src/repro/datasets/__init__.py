"""Synthetic dataset generators standing in for the paper's OSM extracts."""

from .binary import (
    MBR_RECORD_FLOAT32,
    MBR_RECORD_FLOAT64,
    POINT_RECORD_FLOAT64,
    random_envelopes,
    read_mbr_file,
    read_mbr_records,
    read_point_file,
    read_point_records,
    validate_record_file,
    write_mbr_file,
    write_point_file,
)
from .osm_like import DATASETS, PAPER_TABLE3, DatasetSpec, dataset_path, generate_dataset
from .synthetic import (
    SyntheticConfig,
    generate_mixed_records,
    generate_point_records,
    generate_polygon_records,
    generate_polyline_records,
    point_wkt,
    polygon_wkt,
    polyline_wkt,
)

__all__ = [
    "SyntheticConfig",
    "generate_polygon_records",
    "generate_polyline_records",
    "generate_point_records",
    "generate_mixed_records",
    "polygon_wkt",
    "polyline_wkt",
    "point_wkt",
    "DatasetSpec",
    "DATASETS",
    "PAPER_TABLE3",
    "generate_dataset",
    "dataset_path",
    "random_envelopes",
    "write_mbr_file",
    "write_point_file",
    "read_mbr_records",
    "read_point_records",
    "read_mbr_file",
    "read_point_file",
    "validate_record_file",
    "MBR_RECORD_FLOAT32",
    "MBR_RECORD_FLOAT64",
    "POINT_RECORD_FLOAT64",
]
