"""Failure-injection tests: the SPMD pipeline must fail loudly (not hang or
silently corrupt data) when components misbehave."""

import pytest

from repro import mpisim
from repro.core import (
    GridPartitionConfig,
    PartitionConfig,
    SpatialJoin,
    VectorIO,
    WKTParser,
)
from repro.datasets import generate_dataset, random_envelopes
from repro.geometry import Envelope, Polygon
from repro.mpisim import MPIAbortError, ops
from repro.pfs import LustreFilesystem
from repro.store import DistributedStoreServer, StoreError, sharded_bulk_load


@pytest.fixture
def lustre(tmp_path):
    fs = LustreFilesystem(tmp_path / "lustre")
    generate_dataset(fs, "cemetery", scale=0.1)
    return fs


class TestMissingAndCorruptInputs:
    def test_missing_file_aborts_all_ranks(self, lustre):
        def prog(comm):
            vio = VectorIO(lustre)
            return vio.read_geometries(comm, "datasets/does_not_exist.wkt")

        with pytest.raises(FileNotFoundError):
            mpisim.run_spmd(prog, 4)

    def test_corrupt_records_are_skipped_not_fatal(self, lustre):
        # inject garbage lines into an otherwise valid dataset
        with lustre.open("datasets/cemetery.wkt", mode="r+") as fh:
            size = fh.size
            fh.pwrite(size, b"THIS IS NOT WKT\nPOLYGON ((broken\n")

        def prog(comm):
            report = VectorIO(lustre).read_geometries(comm, "datasets/cemetery.wkt")
            return comm.allreduce(report.num_geometries, ops.SUM)

        res = mpisim.run_spmd(prog, 2)
        assert res.values[0] == 40  # the 40 valid records survive

    def test_strict_parser_propagates_failure(self, lustre):
        with lustre.open("datasets/cemetery.wkt", mode="r+") as fh:
            fh.pwrite(fh.size, b"GARBAGE RECORD\n")

        def prog(comm):
            vio = VectorIO(lustre)
            return vio.read_geometries(comm, "datasets/cemetery.wkt", WKTParser(skip_invalid=False))

        with pytest.raises(Exception):
            mpisim.run_spmd(prog, 2)


class TestRankFailures:
    def test_rank_crash_mid_join_propagates(self, lustre):
        generate_dataset(lustre, "lakes", scale=0.02)

        class FaultyJoin(SpatialJoin):
            def refine(self, cell, left, right):
                raise RuntimeError("refine blew up")

        def prog(comm):
            join = FaultyJoin(lustre, grid_config=GridPartitionConfig(num_cells=4))
            return join.run(comm, "datasets/lakes.wkt", "datasets/cemetery.wkt")

        with pytest.raises(RuntimeError, match="refine blew up"):
            mpisim.run_spmd(prog, 3)

    def test_single_rank_death_does_not_hang_collectives(self):
        def prog(comm):
            if comm.rank == comm.size - 1:
                raise ValueError("dead rank")
            # all other ranks are stuck in a collective until the abort fires
            return comm.allreduce(1, ops.SUM)

        with pytest.raises(ValueError, match="dead rank"):
            mpisim.run_spmd(prog, 6)

    def test_mismatched_block_configuration_is_detected(self, lustre):
        # a block size smaller than the largest record must fail loudly
        def prog(comm):
            vio = VectorIO(lustre, PartitionConfig(block_size=16))
            return vio.read_geometries(comm, "datasets/cemetery.wkt")

        with pytest.raises(mpisim.MPIError):
            mpisim.run_spmd(prog, 2)


class TestCorruptShardServing:
    """Distributed serving must convert shard-file corruption into a clean
    ``StoreError`` naming the shard — never a raw struct/pickle exception
    escaping mid-collective."""

    NAME = "corrupt"

    @pytest.fixture
    def sharded(self, tmp_path):
        fs = LustreFilesystem(tmp_path / "lustre")
        geoms = [
            Polygon.from_envelope(env, userdata=i)
            for i, env in enumerate(
                random_envelopes(60, extent=Envelope(0.0, 0.0, 100.0, 100.0),
                                 max_size_fraction=0.1, seed=6)
            )
        ]
        result = sharded_bulk_load(fs, self.NAME, geoms, num_shards=4,
                                   num_partitions=16, page_size=512)
        return fs, result

    def _serve(self, fs, nprocs=4):
        def prog(comm):
            with DistributedStoreServer.open(comm, fs, self.NAME) as server:
                window = Envelope(0.0, 0.0, 100.0, 100.0)
                return server.range_query_batch(
                    [(0, window)] if comm.rank == 0 else None
                )

        return mpisim.run_spmd(prog, nprocs)

    def test_corrupted_shard_data_header_names_the_shard(self, sharded):
        fs, result = sharded
        victim = result.manifest.shards[1]
        with fs.open(f"stores/{victim.store}/data.bin", mode="r+") as fh:
            fh.pwrite(0, b"GARBAGE!" * 8)  # clobber magic + header fields

        with pytest.raises(StoreError, match=r"shard 1") as excinfo:
            self._serve(fs)
        assert victim.store in str(excinfo.value)

    def test_stale_shard_manifest_names_the_shard(self, sharded):
        # a manifest that disagrees with its container raises inside the
        # shard store's own open(), with the shard's store name embedded in
        # the message — the guard must still attribute it to the shard
        # (regression: a substring heuristic once let this escape unwrapped)
        import json

        from repro.store import ShardError

        fs, result = sharded
        victim = result.manifest.shards[1]
        path = f"stores/{victim.store}/manifest.json"
        with fs.open(path) as fh:
            doc = json.loads(fh.pread(0, fh.size).decode("utf-8"))
        doc["num_pages"] += 1
        fs.create_file(path, json.dumps(doc).encode("utf-8"))

        with pytest.raises(StoreError, match=r"shard 1 ") as excinfo:
            self._serve(fs)
        assert isinstance(excinfo.value, ShardError)
        assert excinfo.value.shard_id == 1
        assert excinfo.value.store == victim.store

    def test_truncated_shard_index_names_the_shard(self, sharded):
        fs, result = sharded
        victim = result.manifest.shards[2]
        path = f"stores/{victim.store}/index.bin"
        with fs.open(path) as fh:
            raw = fh.pread(0, fh.size)
        fs.create_file(path, raw[: max(1, len(raw) // 2)])

        with pytest.raises(StoreError, match=r"shard 2") as excinfo:
            self._serve(fs)
        assert victim.store in str(excinfo.value)

    def test_truncated_shard_data_pages_fail_cleanly_mid_query(self, sharded):
        fs, result = sharded
        # pick a shard that actually holds pages, cut its data file just
        # after the header so page reads (not the open) hit the truncation
        victim = next(s for s in result.manifest.shards if s.num_pages > 0)
        path = f"stores/{victim.store}/data.bin"
        with fs.open(path) as fh:
            raw = fh.pread(0, fh.size)
        # keep header + page directory (at the tail we must preserve the
        # directory offset region read at open, so rebuild: header + zeroed
        # payload + directory) — zero the payload bytes instead of cutting
        from repro.store.format import HEADER_SIZE, unpack_header

        header = unpack_header(raw[:HEADER_SIZE])
        corrupted = (
            raw[:HEADER_SIZE]
            + b"\x00" * (header.dir_offset - HEADER_SIZE)
            + raw[header.dir_offset:]
        )
        fs.create_file(path, corrupted)

        with pytest.raises(StoreError, match=rf"shard {victim.shard_id}"):
            self._serve(fs)

    def test_intact_store_still_serves_after_failure_tests(self, sharded):
        fs, result = sharded
        res = self._serve(fs)
        assert sorted(h.record_id for h in res.values[0]) == list(
            range(result.num_records)
        )
