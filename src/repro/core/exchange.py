"""Communication-buffer management and all-to-all geometry exchange.

§4.2.3 of the paper: every rank serialises, per destination rank, the
coordinates and attribute text of the geometries assigned to that rank's
cells; the ranks first exchange buffer sizes with ``MPI_Alltoall`` and then
the payload with ``MPI_Alltoallv``.  For large datasets the exchange is broken
into *sliding-window* phases, each covering a chunk of the cell space, to
bound memory.

Geometries travel as WKB plus their pickled userdata, grouped by cell id —
the Python equivalent of the char-buffer serialisation the paper describes.
"""

from __future__ import annotations

import pickle
import struct
from typing import Dict, List, Mapping, Optional, Sequence

from ..geometry import Geometry, wkb
from ..mpisim import Communicator

__all__ = ["serialise_cell_group", "deserialise_cell_group", "exchange_cells"]


# --------------------------------------------------------------------------- #
# serialisation
# --------------------------------------------------------------------------- #
def serialise_cell_group(cells: Mapping[int, Sequence[Geometry]]) -> bytes:
    """Serialise ``{cell_id: [geometries]}`` into one contiguous byte buffer.

    Layout per geometry: ``<cell_id:uint32><wkb_len:uint32><ud_len:uint32>``
    followed by the WKB payload and the pickled userdata.  The explicit
    length prefixes play the role of MPI's count/displacement arrays.
    """
    out = bytearray()
    for cell_id, geoms in cells.items():
        for geom in geoms:
            body = wkb.dumps(geom)
            userdata = b"" if geom.userdata is None else pickle.dumps(geom.userdata, protocol=4)
            out += struct.pack("<III", cell_id, len(body), len(userdata))
            out += body
            out += userdata
    return bytes(out)


def deserialise_cell_group(data: bytes) -> Dict[int, List[Geometry]]:
    """Inverse of :func:`serialise_cell_group`."""
    cells: Dict[int, List[Geometry]] = {}
    pos = 0
    total = len(data)
    while pos < total:
        cell_id, body_len, ud_len = struct.unpack_from("<III", data, pos)
        pos += 12
        geom = wkb.loads(data[pos : pos + body_len])
        pos += body_len
        if ud_len:
            geom.userdata = pickle.loads(data[pos : pos + ud_len])
            pos += ud_len
        cells.setdefault(cell_id, []).append(geom)
    return cells


# --------------------------------------------------------------------------- #
# exchange
# --------------------------------------------------------------------------- #
def exchange_cells(
    comm: Communicator,
    local_cells: Mapping[int, Sequence[Geometry]],
    cell_to_rank: Mapping[int, int],
    window: Optional[int] = None,
) -> Dict[int, List[Geometry]]:
    """All-to-all personalised exchange of geometries grouped by cell.

    ``window`` bounds how many cells are exchanged per phase (the paper's
    sliding-window technique for "large data sets [where] it is often not
    possible to perform data exchange in a single phase due to memory
    limitations").  ``None`` exchanges everything in one phase.

    Returns the geometries of the cells owned by this rank (its own local
    contributions included).
    """
    nprocs = comm.size
    num_cells = max(cell_to_rank.keys(), default=-1) + 1
    if window is None or window <= 0 or window >= max(1, num_cells):
        phases = [None]  # single phase covering every cell
    else:
        phases = [range(start, min(start + window, num_cells)) for start in range(0, num_cells, window)]

    owned: Dict[int, List[Geometry]] = {}

    for phase_cells in phases:
        # Group this phase's cells by destination rank.
        per_dest: List[Dict[int, List[Geometry]]] = [dict() for _ in range(nprocs)]
        for cell_id, geoms in local_cells.items():
            if phase_cells is not None and cell_id not in phase_cells:
                continue
            dest = cell_to_rank.get(cell_id)
            if dest is None:
                raise KeyError(f"cell {cell_id} has no rank assignment")
            per_dest[dest].setdefault(cell_id, []).extend(geoms)

        with comm.clock.compute(category="comm_pack"):
            send_buffers = [serialise_cell_group(group) for group in per_dest]

        # Round 1: exchange buffer sizes (MPI_Alltoall) so receivers can size
        # their count/displacement arrays.
        recv_counts = comm.alltoall([len(b) for b in send_buffers])

        # Round 2: exchange the payload (MPI_Alltoallv).
        received = comm.alltoallv(send_buffers)
        for expected, chunk in zip(recv_counts, received):
            if len(chunk) != expected:
                raise RuntimeError(
                    f"alltoallv size mismatch: expected {expected} bytes, got {len(chunk)}"
                )

        with comm.clock.compute(category="comm_pack"):
            for chunk in received:
                if not chunk:
                    continue
                for cell_id, geoms in deserialise_cell_group(chunk).items():
                    owned.setdefault(cell_id, []).extend(geoms)

    return owned
