"""Baseline fingerprinting, diffing, and the ``spmd_lint`` CLI gate."""

import json
import textwrap

import pytest

from repro.analysis import Baseline, lint_source, load_baseline, write_baseline
from repro.analysis.baseline import fingerprints
from repro.analysis.cli import main
from repro.analysis.suppress import parse_suppressions, suppressed_rules

BAD = textwrap.dedent(
    """
    def prog(comm):
        if comm.rank == 0:
            comm.barrier()
    """
)

GOOD = textwrap.dedent(
    """
    def prog(comm):
        comm.barrier()
    """
)


# --------------------------------------------------------------------- #
# suppressions
# --------------------------------------------------------------------- #
class TestSuppressions:
    def test_parse_rules_and_reason(self):
        (sup,) = parse_suppressions(
            "x = 1  # spmd: ignore[SPMD001, spmd003] matched in caller\n"
        )
        assert sup.rules == {"SPMD001", "SPMD003"}
        assert sup.reason == "matched in caller"
        assert not sup.standalone

    def test_standalone_covers_next_line(self):
        source = "# spmd: ignore[*]\ncomm.barrier()\n"
        (sup,) = parse_suppressions(source)
        assert sup.standalone
        covered = suppressed_rules([sup])
        assert covered[1] == {"*"} and covered[2] == {"*"}

    def test_trailing_covers_only_its_line(self):
        source = "comm.barrier()  # spmd: ignore[SPMD001] demo\n"
        covered = suppressed_rules(parse_suppressions(source))
        assert set(covered) == {1}


# --------------------------------------------------------------------- #
# fingerprints and baseline diffs
# --------------------------------------------------------------------- #
class TestBaseline:
    def test_fingerprint_survives_line_drift(self):
        before = lint_source(BAD, "src/repro/x.py")
        after = lint_source("\n\n\n" + BAD, "src/repro/x.py")
        assert fingerprints(before) == fingerprints(after)
        assert before[0].line != after[0].line

    def test_identical_findings_get_distinct_occurrences(self):
        source = textwrap.dedent(
            """
            def prog(comm):
                if comm.rank == 0:
                    comm.barrier()
                if comm.rank == 1:
                    comm.barrier()
            """
        )
        prints = fingerprints(lint_source(source, "src/repro/x.py"))
        assert len(prints) == 2 and len(set(prints)) == 2
        assert prints[0].endswith(":0") and prints[1].endswith(":1")

    def test_diff_splits_new_and_stale(self):
        findings = lint_source(BAD, "src/repro/x.py")
        baseline = Baseline.from_findings(findings)
        new, stale = baseline.diff(findings)
        assert new == [] and stale == []
        new, stale = baseline.diff([])
        assert new == [] and len(stale) == 1
        new, stale = Baseline().diff(findings)
        assert len(new) == 1 and stale == []

    def test_roundtrip(self, tmp_path):
        findings = lint_source(BAD, "src/repro/x.py")
        path = tmp_path / "baseline.json"
        write_baseline(Baseline.from_findings(findings), path)
        loaded = load_baseline(path)
        assert loaded.diff(findings) == ([], [])

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json").entries == {}

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": {}}))
        with pytest.raises(ValueError, match="version"):
            load_baseline(path)


# --------------------------------------------------------------------- #
# the CLI gate
# --------------------------------------------------------------------- #
@pytest.fixture()
def tree(tmp_path, monkeypatch):
    """A fake repo tree with one bad and one good module, cwd pinned."""
    pkg = tmp_path / "src" / "repro" / "fake"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text(BAD)
    (pkg / "good.py").write_text(GOOD)
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestCli:
    def test_findings_without_baseline_fail(self, tree, capsys):
        assert main(["src"]) == 1
        out = capsys.readouterr().out
        assert "SPMD001" in out and "bad.py:4" in out

    def test_write_baseline_then_gate_passes(self, tree, capsys):
        assert main(["src", "--write-baseline"]) == 0
        assert main(["src"]) == 0
        payload = json.loads((tree / "spmd_baseline.json").read_text())
        assert len(payload["findings"]) == 1

    def test_new_finding_breaks_the_gate(self, tree):
        assert main(["src", "--write-baseline"]) == 0
        bad2 = tree / "src" / "repro" / "fake" / "bad2.py"
        bad2.write_text(BAD)
        assert main(["src"]) == 1

    def test_fixed_finding_reports_stale_but_passes(self, tree, capsys):
        assert main(["src", "--write-baseline"]) == 0
        (tree / "src" / "repro" / "fake" / "bad.py").write_text(GOOD)
        assert main(["src"]) == 0
        assert "stale baseline entry" in capsys.readouterr().out

    def test_no_baseline_flag_ignores_the_file(self, tree):
        assert main(["src", "--write-baseline"]) == 0
        assert main(["src", "--no-baseline"]) == 1

    def test_json_output(self, tree, capsys):
        assert main(["src", "--json", "--no-baseline"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["new"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "SPMD001"
        assert finding["path"].endswith("bad.py")
        assert not finding["baselined"]

    def test_reasonless_suppression_warns_but_passes(self, tree, capsys):
        target = tree / "src" / "repro" / "fake" / "bad.py"
        target.write_text(BAD.replace(
            "comm.barrier()", "comm.barrier()  # spmd: ignore[SPMD001]"
        ))
        assert main(["src"]) == 0
        assert "has no reason" in capsys.readouterr().out

    def test_single_file_argument(self, tree):
        assert main(["src/repro/fake/good.py", "--no-baseline"]) == 0
        assert main(["src/repro/fake/bad.py", "--no-baseline"]) == 1
