"""Virtual time for the simulated MPI runtime.

A single-core container cannot reproduce cluster timing with wall clocks, so
every rank carries a :class:`VirtualClock`.  I/O and communication operations
advance it through an explicit :class:`CommCostModel`; compute phases advance
it either explicitly (``clock.advance``) or by measuring the calling thread's
CPU time inside :meth:`VirtualClock.compute` and scaling it with a
calibration factor.  Collectives synchronise clocks (completion time is the
maximum of the participants' entry times plus the operation cost), which is
what produces realistic per-phase breakdowns for the end-to-end figures.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator

__all__ = ["VirtualClock", "CommCostModel"]


@dataclass
class CommCostModel:
    """Linear latency/bandwidth model for interconnect transfers.

    Defaults approximate the paper's COMET cluster: FDR InfiniBand with
    56 Gb/s links (~7 GB/s) and microsecond-scale message latency.
    """

    #: one-way message latency in seconds
    latency: float = 2.0e-6
    #: point-to-point bandwidth in bytes/second
    bandwidth: float = 7.0e9
    #: additional per-byte cost of packing/unpacking (serialisation overhead)
    pack_overhead_per_byte: float = 2.0e-11

    def transfer_time(self, nbytes: int) -> float:
        """Time for a single point-to-point message of *nbytes*."""
        nbytes = max(0, int(nbytes))
        return self.latency + nbytes / self.bandwidth + nbytes * self.pack_overhead_per_byte

    def collective_time(self, nbytes_per_rank: int, nranks: int) -> float:
        """Cost of a tree-structured collective (reduce/bcast-style)."""
        if nranks <= 1:
            return 0.0
        rounds = max(1, math.ceil(math.log2(nranks)))
        return rounds * self.transfer_time(nbytes_per_rank)

    def alltoall_time(self, total_send_bytes: int, nranks: int) -> float:
        """Cost of an all-to-all personalised exchange from one rank's view."""
        if nranks <= 1:
            return 0.0
        return (nranks - 1) * self.latency + self.transfer_time(total_send_bytes)


class VirtualClock:
    """Per-rank simulated clock.

    ``now`` only moves forward.  ``compute_scale`` converts measured thread
    CPU seconds into simulated seconds; the default of 1.0 reports real CPU
    effort, while benchmarks model faster cluster cores by setting it below
    one.
    """

    def __init__(self, compute_scale: float = 1.0) -> None:
        if compute_scale <= 0:
            raise ValueError("compute_scale must be positive")
        self._now = 0.0
        self.compute_scale = compute_scale
        #: per-category accumulated time, e.g. {"io": 1.2, "comm": 0.3}
        self.breakdown: Dict[str, float] = {}
        #: observers called with ``(seconds, category)`` on every advance —
        #: the seam a metrics registry subscribes through (see
        #: :meth:`repro.obs.metrics.MetricsRegistry.bind_clock`); kept as a
        #: plain list guarded by one truthiness check so an unobserved
        #: clock pays nothing
        self._listeners: list = []

    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        return self._now

    def reset(self) -> None:
        self._now = 0.0
        self.breakdown.clear()

    def advance(self, seconds: float, category: str = "other") -> float:
        """Advance the clock by *seconds* (negative values are ignored)."""
        if seconds > 0:
            self._now += seconds
            self.breakdown[category] = self.breakdown.get(category, 0.0) + seconds
            if self._listeners:
                for listener in self._listeners:
                    listener(seconds, category)
        return self._now

    def add_listener(self, listener) -> None:
        """Subscribe *listener(seconds, category)* to every advance."""
        self._listeners.append(listener)

    def remove_listener(self, listener) -> None:
        self._listeners.remove(listener)

    def advance_to(self, timestamp: float, category: str = "wait") -> float:
        """Move the clock forward to *timestamp* if it is in the future."""
        if timestamp > self._now:
            self.advance(timestamp - self._now, category=category)
        return self._now

    # ------------------------------------------------------------------ #
    @contextmanager
    def compute(self, category: str = "compute") -> Iterator[None]:
        """Measure the enclosed block's thread CPU time and charge it.

        ``time.thread_time`` counts only the calling thread, so concurrent
        simulated ranks do not pollute each other's measurements even though
        they share one core.
        """
        start = time.thread_time()
        try:
            yield
        finally:
            elapsed = (time.thread_time() - start) * self.compute_scale
            self.advance(elapsed, category=category)

    def charge(self, seconds: float, category: str) -> float:
        """Alias for :meth:`advance` that reads better at call sites."""
        return self.advance(seconds, category=category)

    def category(self, name: str) -> float:
        """Accumulated simulated seconds charged to *name*."""
        return self.breakdown.get(name, 0.0)

    def snapshot(self) -> Dict[str, float]:
        """Copy of the per-category breakdown plus the total."""
        out = dict(self.breakdown)
        out["total"] = self._now
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return f"VirtualClock(now={self._now:.6f})"
