"""EXPLAIN-style reports assembled from recorded spans + stats deltas.

``SpatialDataStore.explain(window)`` and
``DistributedStoreServer.explain_batch(queries)`` answer the question the
ad-hoc counters never could: *where did this one query spend its effort and
what did it touch?*  Rather than a second instrumentation channel, EXPLAIN
re-runs the query under a recording :class:`~repro.obs.trace.Tracer` and
reads the answer off the span hierarchy plus the
:class:`~repro.store.datastore.StoreStats` delta — so the report can never
drift from what tracing reports, and by construction
``report.stats_delta["records_decoded"]`` equals the stats movement of the
explained query.

Reports render two ways: :meth:`as_dict` for programmatic use (benchmarks,
schema checks) and :meth:`render` / ``str()`` for humans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence

from .trace import as_span_dicts

__all__ = [
    "DistributedExplainReport",
    "ExplainReport",
    "build_distributed_explain",
    "build_store_explain",
]


def _stats_delta(
    before: Mapping[str, float], after: Mapping[str, float]
) -> Dict[str, float]:
    # hit_rate is a ratio, not a counter; a delta of it is meaningless
    return {
        k: after[k] - before.get(k, 0)
        for k in after
        if not k.endswith("hit_rate")
    }


@dataclass
class ExplainReport:
    """Structured account of one store query's plan / schedule / refine."""

    query: Dict[str, Any]
    plan: Dict[str, Any]
    #: one dict per coalesced read run, in issue order
    schedule: List[Dict[str, Any]]
    refine: Dict[str, Any]
    cache: Dict[str, Any]
    stats_delta: Dict[str, float]
    num_hits: int
    spans: List[Dict[str, Any]] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "query": self.query,
            "plan": self.plan,
            "schedule": self.schedule,
            "refine": self.refine,
            "cache": self.cache,
            "stats_delta": self.stats_delta,
            "num_hits": self.num_hits,
        }

    # ------------------------------------------------------------------ #
    def render(self) -> str:
        q = self.query
        p = self.plan
        r = self.refine
        c = self.cache
        lines = [
            f"EXPLAIN {q.get('kind', 'range_query')} window={q.get('window')} "
            f"exact={q.get('exact')}",
            f"  plan: {p.get('partitions_visited', 0)}/{p.get('partitions_total', 0)} "
            f"partitions visited ({p.get('partitions_pruned', 0)} pruned), "
            f"{p.get('candidates', 0)} candidate slots over "
            f"{p.get('generations', 0)} generation(s) "
            f"{p.get('candidates_by_generation', {})}, "
            f"{p.get('touched_pages', 0)} page(s)",
        ]
        if not self.schedule:
            lines.append("  schedule: every touched page already cached — no I/O")
        for i, run in enumerate(self.schedule):
            pages = run.get("pages", [])
            page_str = (
                f"pages {pages[0]}..{pages[-1]}" if pages else "no pages"
            )
            lines.append(
                f"  schedule run {i}: generation {run.get('generation', 0)} "
                f"{page_str} ({run.get('num_pages', 0)} pages, "
                f"{run.get('nbytes', 0)} B, {run.get('prefetched', 0)} "
                f"prefetched; policy={run.get('policy')} gap={run.get('gap')} "
                f"readahead stop: {run.get('prefetch_stop')})"
            )
        lines.append(
            f"  refine: {r.get('candidates', 0)} candidates, "
            f"{r.get('replicas_skipped', 0)} replica(s) skipped, "
            f"{r.get('tombstone_drops', 0)} tombstone drop(s), "
            f"{r.get('records_decoded', 0)} decoded, "
            f"{r.get('rect_shortcuts', 0)} rect shortcut(s) -> {self.num_hits} hit(s)"
        )
        lines.append(
            f"  bulk filter: {r.get('slots_scanned', 0)} slot(s) scanned in "
            f"{r.get('bulk_filter_batches', 0)} page batch(es), selectivity "
            f"{r.get('filter_selectivity', 0.0):.3f}"
        )
        lines.append(
            f"  cache: {c.get('hits', 0)} hit(s) / {c.get('misses', 0)} miss(es) "
            f"during page fetch"
        )
        delta = " ".join(
            f"{k}={v:g}" for k, v in sorted(self.stats_delta.items()) if v
        )
        lines.append(f"  stats delta: {delta or '(none)'}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def build_store_explain(
    *,
    kind: str,
    window: Any,
    exact: bool,
    num_hits: int,
    spans: Sequence[Any],
    stats_before: Mapping[str, float],
    stats_after: Mapping[str, float],
    partitions_total: int,
) -> ExplainReport:
    """Fold one query's recorded spans + stats delta into a report."""
    rows = as_span_dicts(spans)
    plan: Dict[str, Any] = {"partitions_total": partitions_total}
    schedule: List[Dict[str, Any]] = []
    refine: Dict[str, Any] = {
        "candidates": 0,
        "replicas_skipped": 0,
        "tombstone_drops": 0,
        "records_decoded": 0,
        "rect_shortcuts": 0,
        "slots_scanned": 0,
        "bulk_filter_batches": 0,
    }
    cache = {"hits": 0, "misses": 0}
    for row in rows:
        attrs = row["attrs"]
        if row["name"] == "plan":
            plan.update(attrs)
            plan["partitions_pruned"] = partitions_total - attrs.get(
                "partitions_visited", 0
            )
        elif row["name"] == "schedule":
            cache["hits"] += attrs.get("cache_hits", 0)
            cache["misses"] += attrs.get("cache_misses", 0)
        elif row["name"] == "io":
            schedule.append(dict(attrs))
        elif row["name"] == "refine":
            refine["candidates"] += attrs.get("candidates", 0)
        elif row["name"] == "decode":
            for key in (
                "replicas_skipped",
                "tombstone_drops",
                "records_decoded",
                "rect_shortcuts",
                "slots_scanned",
                "bulk_filter_batches",
            ):
                refine[key] += attrs.get(key, 0)
    # bulk-filter selectivity: the fraction of scanned candidate slots that
    # survived de-dup + tombstone shadowing (decode-eligible survivors)
    scanned = refine["slots_scanned"]
    survivors = scanned - refine["replicas_skipped"] - refine["tombstone_drops"]
    refine["filter_selectivity"] = (survivors / scanned) if scanned else 0.0
    return ExplainReport(
        query={"kind": kind, "window": window, "exact": exact},
        plan=plan,
        schedule=schedule,
        refine=refine,
        cache=cache,
        stats_delta=_stats_delta(stats_before, stats_after),
        num_hits=num_hits,
        spans=rows,
    )


@dataclass
class DistributedExplainReport:
    """One sharded batch query explained across every rank.

    ``per_rank`` holds each rank's aggregate (records decoded, read
    requests, per-shard query counts); ``shards`` maps shard id to the
    number of batch entries the router kept for it (0-kept shards were
    pruned by their extent); ``spans`` is the connected trace (client spans
    plus every rank's local spans under one trace id).
    """

    query: Dict[str, Any]
    routing: Dict[str, Any]
    shards: Dict[int, Dict[str, Any]]
    per_rank: List[Dict[str, Any]]
    stats_delta: Dict[str, float]
    num_hits: int
    spans: List[Dict[str, Any]] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "query": self.query,
            "routing": self.routing,
            "shards": self.shards,
            "per_rank": self.per_rank,
            "stats_delta": self.stats_delta,
            "num_hits": self.num_hits,
        }

    def render(self) -> str:
        r = self.routing
        lines = [
            f"EXPLAIN distributed batch: {self.query.get('num_queries', 0)} "
            f"queries over {r.get('num_shards', 0)} shard(s) on "
            f"{r.get('num_ranks', 0)} rank(s)",
            f"  routing: {r.get('shards_visited', 0)} shard(s) visited, "
            f"{r.get('shards_pruned', 0)} pruned by extent",
        ]
        for sid in sorted(self.shards):
            info = self.shards[sid]
            lines.append(
                f"  shard {sid} (rank {info.get('rank')}): "
                f"{info.get('entries', 0)} routed entr(ies), "
                f"{info.get('records_decoded', 0)} decoded, "
                f"{info.get('read_requests', 0)} read request(s)"
            )
        for row in self.per_rank:
            lines.append(
                f"  rank {row.get('rank')}: {row.get('spans', 0)} span(s), "
                f"records_decoded={row.get('records_decoded', 0):g}, "
                f"read_requests={row.get('read_requests', 0):g}, "
                f"cache {row.get('cache_hits', 0):g}/"
                f"{row.get('cache_misses', 0):g} hit/miss"
            )
        scanned = self.stats_delta.get("slots_scanned", 0)
        if scanned:
            decoded = self.stats_delta.get("records_decoded", 0)
            lines.append(
                f"  bulk filter: {scanned:g} slot(s) scanned in "
                f"{self.stats_delta.get('bulk_filter_batches', 0):g} page "
                f"batch(es), selectivity {decoded / scanned:.3f}"
            )
        delta = " ".join(
            f"{k}={v:g}" for k, v in sorted(self.stats_delta.items()) if v
        )
        lines.append(f"  aggregate stats delta: {delta or '(none)'}")
        lines.append(f"  -> {self.num_hits} de-duplicated hit(s)")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def build_distributed_explain(
    *,
    num_queries: int,
    num_hits: int,
    num_shards: int,
    num_ranks: int,
    per_rank_payloads: Sequence[Mapping[str, Any]],
) -> DistributedExplainReport:
    """Assemble the rank-0 report from gathered per-rank payloads.

    Each payload carries ``rank``, ``spans`` (dicts), ``stats_delta`` (the
    rank's summed store-stats movement) and ``shards`` (shard id ->
    per-shard detail for shards the rank served).
    """
    spans: List[Dict[str, Any]] = []
    per_rank: List[Dict[str, Any]] = []
    shards: Dict[int, Dict[str, Any]] = {}
    total: Dict[str, float] = {}
    for payload in per_rank_payloads:
        rank_spans = list(payload.get("spans", []))
        spans.extend(rank_spans)
        delta = dict(payload.get("stats_delta", {}))
        for key, value in delta.items():
            total[key] = total.get(key, 0) + value
        per_rank.append(
            {
                "rank": payload["rank"],
                "spans": len(rank_spans),
                "records_decoded": delta.get("records_decoded", 0),
                "read_requests": delta.get("read_requests", 0),
                "cache_hits": delta.get("cache_hits", 0),
                "cache_misses": delta.get("cache_misses", 0),
            }
        )
        for sid, info in payload.get("shards", {}).items():
            shards[int(sid)] = dict(info)
    visited = sum(1 for info in shards.values() if info.get("entries", 0))
    return DistributedExplainReport(
        query={"num_queries": num_queries},
        routing={
            "num_shards": num_shards,
            "num_ranks": num_ranks,
            "shards_visited": visited,
            "shards_pruned": num_shards - visited,
        },
        shards=shards,
        per_rank=per_rank,
        stats_delta=total,
        num_hits=num_hits,
        spans=sorted(spans, key=lambda s: (s["start"], s["span_id"])),
    )
