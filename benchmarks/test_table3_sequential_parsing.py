"""Table 3 — sequential I/O + parsing time per dataset.

Paper: six OSM extracts; parsing a 100 GB-class file takes about an hour, and
polygonal data (All Objects) parses slower than larger-but-simpler line/point
data.  Reproduction: scaled synthetic datasets; the shape to check is the
relative ordering (cemetery ≪ lakes < roads < the big three) and that the
mixed polygon layer costs more per byte than the point layer.
"""

from repro.bench import sequential_parse_table
from repro.datasets import DATASETS


def test_table3_sequential_parsing(lustre, once):
    report = once(sequential_parse_table, lustre, 0.5)
    report.print()

    times = dict(zip(report.series[0].x, report.series[0].y))
    counts = dict(zip(report.series[1].x, report.series[1].y))

    # every dataset was generated and parsed
    assert set(times) == set(DATASETS)
    assert all(v > 0 for v in times.values())
    assert all(counts[name] > 0 for name in DATASETS)

    # shape: the small Cemetery layer is by far the cheapest, and the three
    # large layers dominate, as in the paper's Table 3
    assert times["cemetery"] < times["lakes"]
    assert times["cemetery"] < min(times["all_objects"], times["road_network"], times["all_nodes"])

    # polygons cost more to parse per geometry than points (Figure 14's point)
    per_geom_objects = times["all_objects"] / counts["all_objects"]
    per_geom_nodes = times["all_nodes"] / counts["all_nodes"]
    assert per_geom_objects > per_geom_nodes
