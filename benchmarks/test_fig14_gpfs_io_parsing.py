"""Figure 14 — I/O + parsing performance for All Nodes (points, 96 GB) and
All Objects (polygons, 92 GB) on GPFS with Level-1 access.

Paper shape: although the files are about the same size, All Objects takes
longer because polygon parsing costs more than point parsing; both layers
scale with the number of processes up to around 80.
"""

from repro.bench import gpfs_io_parsing_figure

PROC_COUNTS = [2, 4, 8, 16]


def test_fig14_gpfs_io_plus_parsing(gpfs, once):
    report = once(gpfs_io_parsing_figure, gpfs, PROC_COUNTS, 0.5)
    report.print()

    nodes_t = dict(zip(report.series_by_label("All Nodes (points)").x,
                       report.series_by_label("All Nodes (points)").y))
    objects_t = dict(zip(report.series_by_label("All Objects (polygons)").x,
                         report.series_by_label("All Objects (polygons)").y))

    # polygons cost more than points at every process count
    for p in PROC_COUNTS:
        assert objects_t[p] > nodes_t[p]

    # both layers get faster as processes are added (parsing parallelises)
    assert objects_t[PROC_COUNTS[-1]] < objects_t[PROC_COUNTS[0]]
    assert nodes_t[PROC_COUNTS[-1]] < nodes_t[PROC_COUNTS[0]]
