"""I/O cost model for the simulated parallel filesystems.

The model is deliberately simple — linear latency/bandwidth terms per OST and
per client NIC, combined with a max() over the contended resources — because
that is enough to reproduce every qualitative effect the paper reports:

* aggregate bandwidth grows with stripe count until client links saturate
  (Figures 8 and 9),
* independent reads beat two-phase collective reads for contiguous access
  (§5.1.1, Figures 8–11),
* collective read time depends on the ROMIO aggregator count, which dips when
  the node count is neither a divisor nor a multiple of the stripe count
  (Figure 11),
* non-contiguous access pays per-request latency proportional to the number
  of file-view blocks, so it improves with larger block sizes (Figures 15–16).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

from .striping import OSTLoad, StripeLayout

__all__ = ["ClusterConfig", "IOCostModel", "ReadRequest", "romio_lustre_readers"]


@dataclass(frozen=True)
class ReadRequest:
    """One rank's contribution to a (possibly collective) I/O operation."""

    rank: int
    ranges: Tuple[Tuple[int, int], ...]  # (offset, nbytes) pairs

    @property
    def nbytes(self) -> int:
        return sum(n for _, n in self.ranges)

    @property
    def num_requests(self) -> int:
        return len(self.ranges)


@dataclass
class ClusterConfig:
    """Compute-side parameters (node mapping and NIC speed).

    COMET defaults: 16 MPI processes per node, FDR InfiniBand (~7 GB/s per
    node towards the filesystem).
    """

    procs_per_node: int = 16
    nic_bandwidth: float = 7.0e9
    nic_latency: float = 2.0e-6

    def node_of_rank(self, rank: int) -> int:
        return rank // self.procs_per_node

    def num_nodes(self, nranks: int) -> int:
        return max(1, math.ceil(nranks / self.procs_per_node))


@dataclass
class IOCostModel:
    """Storage-side parameters shared by the Lustre and GPFS models."""

    #: sustained bandwidth of a single OST / storage server (bytes/s)
    ost_bandwidth: float = 1.0e9
    #: fixed per-RPC service latency at an OST (seconds)
    ost_latency: float = 4.0e-4
    #: client-side software overhead per I/O request (seconds)
    request_overhead: float = 5.0e-5
    #: metadata / open cost charged once per file open (seconds)
    open_latency: float = 2.0e-3
    #: cluster (client side) description
    cluster: ClusterConfig = field(default_factory=ClusterConfig)

    # ------------------------------------------------------------------ #
    def single_client_time(self, load: Mapping[int, OSTLoad], nbytes: int) -> float:
        """Time for one client to complete its own requests, uncontended."""
        if nbytes <= 0 and not load:
            return 0.0
        # OSTs serve this client's chunks in parallel.
        ost_time = max(
            (l.requests * self.ost_latency + l.nbytes / self.ost_bandwidth for l in load.values()),
            default=0.0,
        )
        nic_time = self.cluster.nic_latency + nbytes / self.cluster.nic_bandwidth
        sw_time = self.request_overhead * sum(l.requests for l in load.values())
        return max(ost_time, nic_time) + sw_time

    # ------------------------------------------------------------------ #
    def parallel_read_time(
        self,
        layout: StripeLayout,
        requests: Sequence[ReadRequest],
        readers: Optional[Sequence[int]] = None,
    ) -> float:
        """Makespan of a set of concurrent read requests.

        *readers* optionally restricts which ranks actually touch the
        filesystem (the two-phase-I/O aggregators); by default every request's
        rank is a reader.

        The makespan is the maximum of three contended resources:

        * each OST's service time (sum of bytes/requests it receives),
        * each node NIC's transfer time (sum of bytes its ranks receive),
        * each reader's own software overhead.
        """
        if not requests:
            return 0.0
        reader_set = set(readers) if readers is not None else {r.rank for r in requests}

        ost_loads: Dict[int, OSTLoad] = {}
        node_bytes: Dict[int, int] = {}
        client_requests: Dict[int, int] = {}
        for req in requests:
            if req.rank not in reader_set:
                continue
            node = self.cluster.node_of_rank(req.rank)
            node_bytes[node] = node_bytes.get(node, 0) + req.nbytes
            client_requests[req.rank] = client_requests.get(req.rank, 0) + req.num_requests
            for ost, load in layout.ost_loads(list(req.ranges)).items():
                agg = ost_loads.setdefault(ost, OSTLoad())
                agg.nbytes += load.nbytes
                agg.requests += load.requests

        ost_time = max(
            (l.requests * self.ost_latency + l.nbytes / self.ost_bandwidth for l in ost_loads.values()),
            default=0.0,
        )
        nic_time = max(
            (self.cluster.nic_latency + b / self.cluster.nic_bandwidth for b in node_bytes.values()),
            default=0.0,
        )
        sw_time = max(
            (n * self.request_overhead for n in client_requests.values()),
            default=0.0,
        )
        return max(ost_time, nic_time) + sw_time

    # ------------------------------------------------------------------ #
    def redistribution_time(
        self, total_bytes: int, nranks: int, num_aggregators: Optional[int] = None
    ) -> float:
        """Network cost of the second phase of two-phase I/O (aggregators
        scatter the data they read to the other ranks with ``Alltoallv``).

        The aggregator nodes' *egress* links are the bottleneck whenever fewer
        nodes host aggregators than receive data — this is what keeps 24 nodes
        from beating 16 nodes on 64 OSTs in Figure 11 (both configurations are
        limited by the same 16 aggregator readers).
        """
        if nranks <= 1 or total_bytes <= 0:
            return 0.0
        nodes = self.cluster.num_nodes(nranks)
        sender_nodes = min(num_aggregators, nodes) if num_aggregators else nodes
        ingress = total_bytes / max(1, nodes) / self.cluster.nic_bandwidth
        egress = total_bytes / max(1, sender_nodes) / self.cluster.nic_bandwidth
        return self.cluster.nic_latency * nranks + max(ingress, egress)


def romio_lustre_readers(num_nodes: int, stripe_count: int) -> int:
    """Number of aggregator (reader) processes ROMIO selects on Lustre.

    Reproduces the rule discussed in §5.1.1 of the paper:

    * at most one reader per node,
    * when the stripe count is a multiple of the node count every node gets a
      reader,
    * when it is not, ROMIO falls back to the largest divisor of the stripe
      count that does not exceed the node count (e.g. 16 readers for 24 nodes
      on 64 OSTs, 32 readers for 48 nodes on 64 OSTs).
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    if stripe_count < 1:
        raise ValueError("stripe_count must be >= 1")
    if stripe_count % num_nodes == 0:
        return num_nodes
    best = 1
    for d in range(1, stripe_count + 1):
        if stripe_count % d == 0 and d <= num_nodes:
            best = max(best, d)
    return best
