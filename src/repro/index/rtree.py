"""R-tree spatial indexes.

Two variants are provided, mirroring how GEOS is used in the paper:

* :class:`STRtree` — a Sort-Tile-Recursive bulk-loaded, query-only tree.  This
  is what the local filter phase of the spatial join builds per grid cell and
  what the distributed-indexing experiment (Figure 20) measures.
* :class:`RTree` — an insertion-based tree (quadratic split) used where
  geometries arrive incrementally, e.g. indexing the grid-cell boundaries that
  incoming geometries are matched against during spatial partitioning.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Generic, Iterable, List, Optional, Sequence, Tuple, TypeVar

from ..geometry import Envelope

T = TypeVar("T")

__all__ = ["STRtree", "RTree", "RTreeStats"]


# --------------------------------------------------------------------------- #
# STR bulk-loaded tree
# --------------------------------------------------------------------------- #
class _STRNode:
    __slots__ = ("envelope", "children", "items")

    def __init__(
        self,
        envelope: Envelope,
        children: Optional[List["_STRNode"]] = None,
        items: Optional[List[Tuple[Envelope, Any]]] = None,
    ) -> None:
        self.envelope = envelope
        self.children = children or []
        self.items = items or []

    @property
    def is_leaf(self) -> bool:
        return not self.children


@dataclass
class RTreeStats:
    """Summary statistics, handy for tests and the indexing benchmark."""

    num_items: int = 0
    num_nodes: int = 0
    height: int = 0


class STRtree(Generic[T]):
    """Sort-Tile-Recursive packed R-tree.

    Items are ``(envelope, payload)`` pairs supplied at construction time; the
    tree is immutable afterwards.  Query cost is O(log n + k).
    """

    def __init__(
        self,
        items: Iterable[Tuple[Envelope, T]],
        node_capacity: int = 16,
    ) -> None:
        if node_capacity < 2:
            raise ValueError("node_capacity must be >= 2")
        self.node_capacity = node_capacity
        entries = [(env, payload) for env, payload in items if not env.is_empty]
        self._size = len(entries)
        self._root = self._build(entries)

    @classmethod
    def from_packed(
        cls,
        root: Optional[_STRNode],
        size: int,
        node_capacity: int = 16,
    ) -> "STRtree[T]":
        """Adopt an already-built node graph without re-running the STR pack.

        This is the deserialisation path of :mod:`repro.store.index_io`: a
        persisted index is decoded back into ``_STRNode`` objects and stitched
        into a queryable tree, skipping the O(n log n) bulk load.
        """
        if node_capacity < 2:
            raise ValueError("node_capacity must be >= 2")
        if size < 0:
            raise ValueError("size must be >= 0")
        if (root is None) != (size == 0):
            raise ValueError("empty tree must have no root (and vice versa)")
        tree: "STRtree[T]" = cls.__new__(cls)
        tree.node_capacity = node_capacity
        tree._size = size
        tree._root = root
        return tree

    # -- construction ---------------------------------------------------- #
    def _build(self, entries: List[Tuple[Envelope, T]]) -> Optional[_STRNode]:
        if not entries:
            return None
        # Leaf level: sort by x of centre, tile into vertical slices, sort each
        # slice by y, pack into leaves of node_capacity items.
        leaves = self._pack_leaves(entries)
        nodes = leaves
        while len(nodes) > 1:
            nodes = self._pack_nodes(nodes)
        return nodes[0]

    def _pack_leaves(self, entries: List[Tuple[Envelope, T]]) -> List[_STRNode]:
        cap = self.node_capacity
        count = len(entries)
        num_leaves = math.ceil(count / cap)
        num_slices = max(1, math.ceil(math.sqrt(num_leaves)))
        slice_size = math.ceil(count / num_slices)

        by_x = sorted(entries, key=lambda e: e[0].centre[0])
        leaves: List[_STRNode] = []
        for s in range(0, count, slice_size):
            strip = sorted(by_x[s : s + slice_size], key=lambda e: e[0].centre[1])
            for i in range(0, len(strip), cap):
                chunk = strip[i : i + cap]
                env = Envelope.empty()
                for item_env, _ in chunk:
                    env = env.union(item_env)
                leaves.append(_STRNode(env, items=list(chunk)))
        return leaves

    def _pack_nodes(self, nodes: List[_STRNode]) -> List[_STRNode]:
        cap = self.node_capacity
        count = len(nodes)
        num_parents = math.ceil(count / cap)
        num_slices = max(1, math.ceil(math.sqrt(num_parents)))
        slice_size = math.ceil(count / num_slices)

        by_x = sorted(nodes, key=lambda n: n.envelope.centre[0])
        parents: List[_STRNode] = []
        for s in range(0, count, slice_size):
            strip = sorted(by_x[s : s + slice_size], key=lambda n: n.envelope.centre[1])
            for i in range(0, len(strip), cap):
                chunk = strip[i : i + cap]
                env = Envelope.empty()
                for child in chunk:
                    env = env.union(child.envelope)
                parents.append(_STRNode(env, children=list(chunk)))
        return parents

    # -- queries ---------------------------------------------------------- #
    def __len__(self) -> int:
        return self._size

    @property
    def is_empty(self) -> bool:
        return self._size == 0

    @property
    def bounds(self) -> Envelope:
        return self._root.envelope if self._root else Envelope.empty()

    def query(self, search: Envelope) -> List[T]:
        """All payloads whose envelope intersects *search*."""
        results: List[T] = []
        if self._root is None or search.is_empty:
            return results
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not node.envelope.intersects(search):
                continue
            if node.is_leaf:
                for env, payload in node.items:
                    if env.intersects(search):
                        results.append(payload)
            else:
                stack.extend(node.children)
        return results

    def query_pairs(self, items: Sequence[Tuple[Envelope, Any]]) -> List[Tuple[Any, T]]:
        """Join-style query: for every (env, payload) in *items*, find tree
        entries whose envelope intersects and return (item payload, tree
        payload) candidate pairs — the filter-phase output of a spatial join.
        """
        pairs: List[Tuple[Any, T]] = []
        for env, payload in items:
            for match in self.query(env):
                pairs.append((payload, match))
        return pairs

    def stats(self) -> RTreeStats:
        stats = RTreeStats(num_items=self._size)
        if self._root is None:
            return stats

        def walk(node: _STRNode, depth: int) -> None:
            stats.num_nodes += 1
            stats.height = max(stats.height, depth)
            for child in node.children:
                walk(child, depth + 1)

        walk(self._root, 1)
        return stats


# --------------------------------------------------------------------------- #
# dynamic (insert-based) tree with quadratic split
# --------------------------------------------------------------------------- #
class _DynNode:
    __slots__ = ("envelope", "children", "entries", "parent", "_leaf")

    def __init__(self, leaf: bool) -> None:
        self.envelope = Envelope.empty()
        self.children: List["_DynNode"] = []
        self.entries: List[Tuple[Envelope, Any]] = []
        self.parent: Optional["_DynNode"] = None
        self._leaf = leaf

    @property
    def is_leaf(self) -> bool:
        return self._leaf


class RTree(Generic[T]):
    """Guttman R-tree with quadratic node split.

    Supports incremental :meth:`insert` followed by :meth:`query`; used for
    the cell-boundary index built during spatial partitioning (each local
    geometry's MBR is probed against it to find overlapping grid cells).
    """

    def __init__(self, max_entries: int = 8, min_entries: Optional[int] = None) -> None:
        if max_entries < 4:
            raise ValueError("max_entries must be >= 4")
        self.max_entries = max_entries
        self.min_entries = min_entries if min_entries is not None else max(2, max_entries // 2)
        if self.min_entries > max_entries // 2:
            self.min_entries = max_entries // 2
        self._root = _DynNode(leaf=True)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def bounds(self) -> Envelope:
        return self._root.envelope

    # -- insertion --------------------------------------------------------- #
    def insert(self, envelope: Envelope, payload: T) -> None:
        """Insert one item; empty envelopes are rejected."""
        if envelope.is_empty:
            raise ValueError("cannot index an empty envelope")
        leaf = self._choose_leaf(self._root, envelope)
        leaf.entries.append((envelope, payload))
        leaf.envelope = leaf.envelope.union(envelope)
        self._size += 1
        if len(leaf.entries) > self.max_entries:
            self._split(leaf)
        else:
            self._adjust_upwards(leaf)

    def extend(self, items: Iterable[Tuple[Envelope, T]]) -> None:
        for env, payload in items:
            self.insert(env, payload)

    def _choose_leaf(self, node: _DynNode, env: Envelope) -> _DynNode:
        while not node.is_leaf:
            best = None
            best_enl = math.inf
            best_area = math.inf
            for child in node.children:
                enl = child.envelope.enlargement(env)
                area = child.envelope.area
                if enl < best_enl or (enl == best_enl and area < best_area):
                    best, best_enl, best_area = child, enl, area
            if best is None:
                # every child produced a NaN enlargement (infinite
                # envelopes): any subtree is as good as any other
                best = node.children[0]
            node = best
        return node

    def _entries_of(self, node: _DynNode) -> List[Tuple[Envelope, Any]]:
        if node.is_leaf:
            return list(node.entries)
        return [(c.envelope, c) for c in node.children]

    def _split(self, node: _DynNode) -> None:
        entries = self._entries_of(node)
        group_a, group_b = self._quadratic_split(entries)

        def fill(target: _DynNode, group: List[Tuple[Envelope, Any]]) -> None:
            target.envelope = Envelope.empty()
            if target.is_leaf:
                target.entries = []
                for env, payload in group:
                    target.entries.append((env, payload))
                    target.envelope = target.envelope.union(env)
            else:
                target.children = []
                for env, child in group:
                    child.parent = target
                    target.children.append(child)
                    target.envelope = target.envelope.union(env)

        if node is self._root:
            new_root = _DynNode(leaf=False)
            left = _DynNode(leaf=node.is_leaf)
            right = _DynNode(leaf=node.is_leaf)
            fill(left, group_a)
            fill(right, group_b)
            left.parent = right.parent = new_root
            new_root.children = [left, right]
            new_root.envelope = left.envelope.union(right.envelope)
            self._root = new_root
            return

        parent = node.parent
        assert parent is not None
        sibling = _DynNode(leaf=node.is_leaf)
        fill(node, group_a)
        fill(sibling, group_b)
        sibling.parent = parent
        parent.children.append(sibling)
        parent.envelope = parent.envelope.union(sibling.envelope)
        if len(parent.children) > self.max_entries:
            self._split(parent)
        else:
            self._adjust_upwards(parent)

    def _quadratic_split(
        self, entries: List[Tuple[Envelope, Any]]
    ) -> Tuple[List[Tuple[Envelope, Any]], List[Tuple[Envelope, Any]]]:
        # Pick the pair of seeds wasting the most area if grouped together.
        # Seeds start distinct so degenerate inputs (all-identical or
        # infinite envelopes, where every waste is 0 or NaN) can never
        # select the same entry twice and silently duplicate it.
        worst = -math.inf
        seed_a, seed_b = 0, 1
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                waste = (
                    entries[i][0].union(entries[j][0]).area
                    - entries[i][0].area
                    - entries[j][0].area
                )
                if waste > worst:
                    worst, seed_a, seed_b = waste, i, j
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        env_a, env_b = entries[seed_a][0], entries[seed_b][0]
        remaining = [e for k, e in enumerate(entries) if k not in (seed_a, seed_b)]

        while remaining:
            # Force-assign when one group must absorb the rest to reach minimum.
            if len(group_a) + len(remaining) <= self.min_entries:
                group_a.extend(remaining)
                break
            if len(group_b) + len(remaining) <= self.min_entries:
                group_b.extend(remaining)
                break
            # Pick the entry with maximum preference difference.
            best_idx = 0
            best_diff = -math.inf
            for idx, (env, _) in enumerate(remaining):
                d_a = env_a.enlargement(env)
                d_b = env_b.enlargement(env)
                diff = abs(d_a - d_b)
                if diff > best_diff:
                    best_diff, best_idx = diff, idx
            env, payload = remaining.pop(best_idx)
            if env_a.enlargement(env) <= env_b.enlargement(env):
                group_a.append((env, payload))
                env_a = env_a.union(env)
            else:
                group_b.append((env, payload))
                env_b = env_b.union(env)
        return group_a, group_b

    def _adjust_upwards(self, node: _DynNode) -> None:
        current: Optional[_DynNode] = node
        while current is not None:
            env = Envelope.empty()
            if current.is_leaf:
                for e, _ in current.entries:
                    env = env.union(e)
            else:
                for child in current.children:
                    env = env.union(child.envelope)
            current.envelope = env
            current = current.parent

    # -- queries ----------------------------------------------------------- #
    def query(self, search: Envelope) -> List[T]:
        """All payloads whose envelope intersects *search*."""
        results: List[T] = []
        if search.is_empty or self._size == 0:
            return results
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not node.envelope.intersects(search):
                continue
            if node.is_leaf:
                for env, payload in node.entries:
                    if env.intersects(search):
                        results.append(payload)
            else:
                stack.extend(node.children)
        return results

    def query_point(self, x: float, y: float) -> List[T]:
        return self.query(Envelope.of_point(x, y))

    def stats(self) -> RTreeStats:
        stats = RTreeStats(num_items=self._size)

        def walk(node: _DynNode, depth: int) -> None:
            stats.num_nodes += 1
            stats.height = max(stats.height, depth)
            for child in node.children:
                walk(child, depth + 1)

        walk(self._root, 1)
        return stats
