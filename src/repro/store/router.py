"""Shard routing for distributed store serving.

The router is the query-side view of ``shards.json``: given a query window
it prunes the shard list via the per-shard data extents (the coarsest level
of the store's pruning hierarchy — shard extent, then partition MBR, then
page MBR / index leaf), assigns shards to serving ranks, and builds the
per-rank scatter plan for a query batch.

It also answers *partition ownership*: every logical record's home
partition is the lowest-numbered global grid cell its MBR overlaps,
computed with exactly the same cell R-tree probe the bulk loader used, so a
record replicated into several shards is owned by exactly one of them.
That rule is what lets store-backed pipeline input
(:meth:`repro.core.framework.SpatialComputation.run_from_store`) read every
record exactly once across ranks without any communication.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..geometry import Envelope
from ..index import RTree, UniformGrid
from .manifest import ShardInfo, ShardsManifest

__all__ = ["ShardRouter", "shard_assignment"]


class _EnvelopeCarrier:
    """Minimal record the grid partitioner accepts (it only reads .envelope)."""

    __slots__ = ("envelope",)

    def __init__(self, envelope: Envelope) -> None:
        self.envelope = envelope


def shard_assignment(num_shards: int, nranks: int) -> Dict[int, int]:
    """Contiguous balanced mapping of shards onto serving ranks.

    With ``nranks >= num_shards`` every shard gets its own rank (the extra
    ranks serve nothing but still participate in the collectives); otherwise
    each rank serves a contiguous run of shards, so neighbouring partitions
    stay on one rank.
    """
    if num_shards < 0 or nranks < 1:
        raise ValueError("need num_shards >= 0 and nranks >= 1")
    return {sid: sid * nranks // num_shards for sid in range(num_shards)}


class ShardRouter:
    """Routing decisions over one :class:`~repro.store.manifest.ShardsManifest`."""

    def __init__(self, manifest: ShardsManifest) -> None:
        self.manifest = manifest
        self._grid: Optional[UniformGrid] = None
        self._cell_tree: Optional[RTree] = None
        self._partition_to_shard = manifest.partition_to_shard()

    # ------------------------------------------------------------------ #
    # shard pruning
    # ------------------------------------------------------------------ #
    def shards_for(self, window: Envelope) -> List[ShardInfo]:
        """Shards whose data extent intersects *window* (empty-safe)."""
        return self.manifest.shards_for(window)

    def replicas_for(self, shard_id: int) -> List[str]:
        """Read-replica store names of *shard_id*, in failover order."""
        return list(self.manifest.shards[shard_id].replica_stores)

    def plan(
        self,
        queries: Sequence[Tuple[Any, Envelope]],
        assignment: Dict[int, int],
        nranks: int,
    ) -> List[List[Tuple[int, Any, Envelope]]]:
        """Per-rank scatter plan for a query batch.

        Each entry of the returned ``nranks``-long list holds the
        ``(index, query_id, window)`` triples the rank must answer; a query
        touching several shards of one rank appears once in that rank's
        list (the rank probes all of its matching shards locally).
        """
        out: List[List[Tuple[int, Any, Envelope]]] = [[] for _ in range(nranks)]
        for idx, (qid, window) in enumerate(queries):
            targets = {assignment[s.shard_id] for s in self.shards_for(window)}
            for rank in sorted(targets):
                out[rank].append((idx, qid, window))
        return out

    # ------------------------------------------------------------------ #
    # partition ownership (replica de-dup for store-backed pipeline input)
    # ------------------------------------------------------------------ #
    @property
    def grid(self) -> UniformGrid:
        """The global partition grid reconstructed from the manifest."""
        if self._grid is None:
            self._grid = UniformGrid(
                self.manifest.extent, self.manifest.grid_rows, self.manifest.grid_cols
            )
        return self._grid

    def _tree(self) -> RTree:
        if self._cell_tree is None:
            # the exact tree the bulk loader's replication probe used — any
            # divergence here would break the exactly-once ownership rule
            from ..core.grid_partition import cell_rtree

            self._cell_tree = cell_rtree(self.grid)
        return self._cell_tree

    def cell_tree(self) -> RTree:
        """The cached grid-cell R-tree (shared with append replication so
        the probe is built once per routing decision chain, not per shard)."""
        return self._tree()

    def overlapping_partitions(self, env: Envelope) -> List[int]:
        """Global partitions the envelope overlaps, via the same probe
        (``assign_to_cells``: cell R-tree, grid-clamp fallback) the bulk
        loader's replication used, so the two can never disagree."""
        if env.is_empty:
            return []
        from ..core.grid_partition import assign_to_cells

        carrier = _EnvelopeCarrier(env)
        return sorted(assign_to_cells(self.grid, [carrier], self._tree()))

    def home_partition(self, env: Envelope) -> int:
        """The partition that *owns* a record: the lowest overlapping cell.

        Replicas of one record agree on this without communication, so the
        shard holding the home partition is the record's unique owner.
        """
        cells = self.overlapping_partitions(env)
        if not cells:
            raise ValueError("cannot compute home partition of an empty envelope")
        return min(cells)

    def owner_shard(self, env: Envelope) -> Optional[int]:
        """Shard owning the record with MBR *env* (None if outside all shards)."""
        return self._partition_to_shard.get(self.home_partition(env))
