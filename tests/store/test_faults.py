"""Fault-tolerance battery for the serving stack.

Covers the full chain the fault-injection harness exercises: deterministic
seeded injection (`repro.faults`), per-page CRC32 checksums turning silent
bit-flips into :class:`PageChecksumError`, bounded retry/backoff absorbing
transient read errors, quarantine of poisoned pages, degraded-mode partial
results with exact missing-partition accounting, per-query I/O deadlines
and replica failover in the sharded server.
"""

import pytest

from repro import mpisim
from repro.datasets import random_envelopes
from repro.faults import (
    FaultRule,
    FaultStats,
    FaultyFilesystem,
    RankFaultInjector,
    TransientIOError,
)
from repro.geometry import Envelope, Polygon
from repro.mpisim import MPIAbortError
from repro.pfs import LustreFilesystem
from repro.store import (
    DEFAULT_RETRY,
    DeadlineExceeded,
    DistributedStoreServer,
    NO_RETRY,
    PageChecksumError,
    PageKey,
    QueryResult,
    RetryPolicy,
    ShardedStoreWriter,
    SpatialDataStore,
    StoreError,
    bulk_load,
    replica_store_name,
)

WINDOW = Envelope(0.0, 0.0, 100.0, 100.0)


def make_polygons(count, seed):
    return [
        Polygon.from_envelope(env, userdata=i)
        for i, env in enumerate(
            random_envelopes(count, extent=WINDOW, max_size_fraction=0.1, seed=seed)
        )
    ]


def flip_page_byte(fs, store):
    """Flip one payload byte of the first base page of an open store's
    container; returns the poisoned PageKey."""
    meta = store.generations[0].pages[0]
    path = store.generations[0].data_path
    with fs.open(path, mode="r+") as fh:
        byte = fh.pread(meta.offset, 1)
        fh.pwrite(meta.offset, bytes([byte[0] ^ 0x40]))
    return PageKey(0, meta.page_id)


# --------------------------------------------------------------------------- #
# injection harness
# --------------------------------------------------------------------------- #
class TestFaultyFilesystem:
    @pytest.fixture
    def fs(self, tmp_path):
        inner = LustreFilesystem(tmp_path / "pfs")
        inner.create_file("data/a.bin", bytes(range(256)) * 16)
        inner.create_file("data/b.bin", b"clean" * 100)
        return FaultyFilesystem(inner, seed=7)

    def test_unarmed_and_unmatched_reads_pass_through(self, fs):
        fs.add_rule(FaultRule(path_pattern="data/a.bin", read_error_rate=1.0))
        fs.disarm()
        with fs.open("data/a.bin") as fh:
            assert fh.pread(0, 16) == bytes(range(16))
        fs.arm()
        with fs.open("data/b.bin") as fh:  # pattern does not match
            assert fh.pread(0, 5) == b"clean"
        with pytest.raises(TransientIOError):
            with fs.open("data/a.bin") as fh:
                fh.pread(0, 16)

    def test_rank_filter_applies_outside_runtime_as_rank_zero(self, fs):
        fs.add_rule(
            FaultRule(path_pattern="*", ranks=[3], read_error_rate=1.0)
        )
        with fs.open("data/a.bin") as fh:  # main thread reads as rank 0
            assert len(fh.pread(0, 64)) == 64

    def test_max_faults_bounds_the_injection(self, fs):
        fs.add_rule(
            FaultRule(path_pattern="*", read_error_rate=1.0, max_faults=2)
        )
        failures = 0
        with fs.open("data/a.bin") as fh:
            for _ in range(10):
                try:
                    fh.pread(0, 8)
                except TransientIOError:
                    failures += 1
        assert failures == 2
        assert fs.stats.read_errors == 2

    def test_bitflip_changes_exactly_one_bit(self, fs):
        fs.add_rule(FaultRule(path_pattern="*", bitflip_rate=1.0, max_faults=1))
        with fs.open("data/a.bin") as fh:
            flipped = fh.pread(0, 64)
        clean = (bytes(range(256)) * 16)[:64]
        diff = [i for i in range(64) if flipped[i] != clean[i]]
        assert len(diff) == 1
        assert bin(flipped[diff[0]] ^ clean[diff[0]]).count("1") == 1
        assert fs.stats.bitflip_sites == [("data/a.bin", 0)]

    def test_seeded_replay_is_deterministic(self, fs):
        fs.add_rule(
            FaultRule(path_pattern="*", read_error_rate=0.3, bitflip_rate=0.3)
        )

        def run():
            outcomes = []
            with fs.open("data/a.bin") as fh:
                for i in range(50):
                    try:
                        outcomes.append(fh.pread(i, 8))
                    except TransientIOError:
                        outcomes.append("error")
            return outcomes, (fs.stats.read_errors, fs.stats.bitflips)

        first = run()
        fs.reset()
        assert run() == first

    def test_latency_spikes_add_virtual_seconds(self, fs):
        from repro.pfs import ReadRequest

        fs.add_rule(
            FaultRule(
                path_pattern="*",
                latency_spike_rate=1.0,
                latency_spike_seconds=0.25,
            )
        )
        base = fs.inner.read_time("data/a.bin", [ReadRequest(0, ((0, 64),))])
        spiked = fs.read_time("data/a.bin", [ReadRequest(0, ((0, 64),))])
        assert spiked == pytest.approx(base + 0.25)
        assert fs.stats.latency_spikes == 1

    def test_rank_fault_injector_kills_the_configured_rank(self):
        def prog(comm):
            comm.attach_fault_hook(RankFaultInjector(fail_rank=1, after_calls=2))
            for _ in range(5):
                comm.allreduce(1, mpisim.ops.SUM)
            return comm.rank

        with pytest.raises(mpisim.RankFaultError, match="rank 1"):
            mpisim.run_spmd(prog, 4)


# --------------------------------------------------------------------------- #
# checksums, retry, quarantine (single store)
# --------------------------------------------------------------------------- #
class TestChecksumsAndRetry:
    @pytest.fixture
    def loaded(self, tmp_path):
        fs = LustreFilesystem(tmp_path / "pfs")
        geoms = make_polygons(80, seed=11)
        bulk_load(fs, "faulty", geoms, num_partitions=16, page_size=512)
        return fs, geoms

    def test_backoff_schedule_is_bounded_exponential(self):
        policy = RetryPolicy(
            max_attempts=5, backoff_base=0.01, backoff_multiplier=2.0,
            backoff_max=0.03,
        )
        assert policy.backoff(1) == pytest.approx(0.01)
        assert policy.backoff(2) == pytest.approx(0.02)
        assert policy.backoff(3) == pytest.approx(0.03)  # capped
        assert policy.backoff(4) == pytest.approx(0.03)
        assert NO_RETRY.max_attempts == 1

    def test_transient_read_errors_are_retried_and_counted(self, loaded):
        fs, geoms = loaded
        faulty = FaultyFilesystem(fs, seed=3)
        faulty.add_rule(
            FaultRule(
                path_pattern="stores/faulty/*", read_error_rate=1.0, max_faults=2
            )
        )
        with SpatialDataStore.open(faulty, "faulty", cache_pages=256) as store:
            hits = store.range_query(WINDOW)
            assert sorted(h.record_id for h in hits) == list(range(len(geoms)))
            assert store.stats.retries >= 2
            assert store.stats.checksum_failures == 0
            assert faulty.stats.read_errors == 2

    def test_retry_backoff_charges_virtual_io_seconds(self, loaded):
        fs, _ = loaded
        faulty = FaultyFilesystem(fs, seed=3)
        faulty.add_rule(
            FaultRule(
                path_pattern="stores/faulty/data.bin",
                read_error_rate=1.0,
                max_faults=1,
            )
        )
        slow = RetryPolicy(max_attempts=3, backoff_base=1.0, backoff_max=4.0)
        with SpatialDataStore.open(
            faulty, "faulty", cache_pages=256, retry_policy=slow
        ) as store:
            clean_open_io = None
            store.range_query(WINDOW)
            assert store.stats.io_seconds >= 1.0  # the injected backoff

        with SpatialDataStore.open(fs, "faulty", cache_pages=256) as store:
            store.range_query(WINDOW)
            clean_open_io = store.stats.io_seconds
        assert clean_open_io < 1.0

    def test_retry_exhaustion_raises_store_error(self, loaded):
        fs, _ = loaded
        faulty = FaultyFilesystem(fs, seed=3)
        faulty.add_rule(
            FaultRule(path_pattern="stores/faulty/data.bin", read_error_rate=1.0)
        )
        faulty.disarm()  # open clean, then let every page read fail
        with SpatialDataStore.open(faulty, "faulty", cache_pages=256) as store:
            faulty.arm()
            with pytest.raises(StoreError, match="attempt"):
                store.range_query(WINDOW)

    def test_bitflip_is_detected_and_quarantined(self, loaded):
        fs, geoms = loaded
        with SpatialDataStore.open(fs, "faulty", cache_pages=256) as store:
            key = flip_page_byte(fs, store)

        with SpatialDataStore.open(fs, "faulty", cache_pages=256) as store:
            with pytest.raises(PageChecksumError) as excinfo:
                store.range_query(WINDOW)
            assert excinfo.value.page_id == key.page_id
            assert key in store.quarantined_pages
            assert store.stats.checksum_failures == 1
            # fail-fast on the quarantined page: no fresh I/O, counted once
            reads_before = store.stats.read_requests
            with pytest.raises(PageChecksumError, match="quarantined"):
                store.range_query(WINDOW)
            assert store.stats.read_requests == reads_before
            assert store.stats.checksum_failures == 1

    def test_in_flight_bitflip_is_retried_from_clean_bytes(self, loaded):
        # a torn/bit-flipped *read* (backing file intact) must be absorbed
        # by re-reading, not quarantined
        fs, geoms = loaded
        faulty = FaultyFilesystem(fs, seed=5)
        faulty.add_rule(
            FaultRule(
                path_pattern="stores/faulty/data.bin",
                bitflip_rate=1.0,
                max_faults=1,
            )
        )
        faulty.disarm()  # flip a page read, not the open-time header read
        with SpatialDataStore.open(faulty, "faulty", cache_pages=256) as store:
            faulty.arm()
            hits = store.range_query(WINDOW)
            assert sorted(h.record_id for h in hits) == list(range(len(geoms)))
            assert store.stats.retries >= 1
            assert not store.quarantined_pages

    def test_partial_ok_collects_failures_with_partition_accounting(self, loaded):
        fs, geoms = loaded
        with SpatialDataStore.open(fs, "faulty", cache_pages=256) as store:
            key = flip_page_byte(fs, store)

        with SpatialDataStore.open(fs, "faulty", cache_pages=256) as store:
            outcome = store.query_outcome([(0, WINDOW)], partial_ok=True)
            assert not outcome.complete
            assert [k for k, _ in outcome.failed_pages] == [key]
            assert all(
                isinstance(exc, PageChecksumError)
                for _, exc in outcome.failed_pages
            )
            assert outcome.missing_partitions == [store.partition_of_page(key)]
            assert outcome.incomplete_queries == [0]
            # the surviving hits are exactly the full answer minus the
            # records of the poisoned page
            full = set(range(len(geoms)))
            got = {h.record_id for h in outcome.hits[0]}
            assert got < full
            lost = full - got
            assert lost  # the page held records

    def test_deadline_truncates_with_deadline_exceeded(self, loaded):
        fs, geoms = loaded
        with SpatialDataStore.open(fs, "faulty", cache_pages=256) as store:
            outcome = store.query_outcome(
                [(0, WINDOW)], partial_ok=True, budget=0.0
            )
            assert not outcome.complete
            assert outcome.incomplete_queries == [0]
            assert any(
                isinstance(exc, DeadlineExceeded)
                for _, exc in outcome.failed_pages
            )
            with pytest.raises(DeadlineExceeded):
                store.query_outcome([(0, WINDOW)], partial_ok=False, budget=0.0)

    def test_generous_deadline_changes_nothing(self, loaded):
        fs, geoms = loaded
        with SpatialDataStore.open(fs, "faulty", cache_pages=256) as store:
            outcome = store.query_outcome([(0, WINDOW)], budget=1e9)
            assert outcome.complete
            assert sorted(h.record_id for h in outcome.hits[0]) == list(
                range(len(geoms))
            )


# --------------------------------------------------------------------------- #
# replica failover and degraded serving (sharded)
# --------------------------------------------------------------------------- #
class TestReplicaFailover:
    NAME = "ft"

    @pytest.fixture
    def sharded(self, tmp_path):
        fs = LustreFilesystem(tmp_path / "pfs")
        geoms = make_polygons(60, seed=21)
        result = ShardedStoreWriter(
            fs, self.NAME, num_shards=4, num_partitions=16, page_size=512,
            read_replicas=1,
        ).load(geoms)
        return fs, geoms, result

    def _serve(self, fs, nprocs=4, allow_degraded=False, partial_ok=False,
               deadline=None):
        def prog(comm):
            with DistributedStoreServer.open(
                comm, fs, self.NAME, allow_degraded=allow_degraded
            ) as server:
                res = server.range_query_batch(
                    [(0, WINDOW)] if comm.rank == 0 else None,
                    partial_ok=partial_ok,
                    deadline=deadline,
                )
                snapshot = server.aggregate_metrics()
                return res, snapshot

        out = mpisim.run_spmd(prog, nprocs)
        return out.values[0]

    def _poison_store(self, fs, store_name):
        """Zero the payload bytes of a shard store's container (header and
        directory kept, so only page fetches fail — via checksums)."""
        from repro.store.format import HEADER_SIZE, unpack_header

        path = f"stores/{store_name}/data.bin"
        with fs.open(path) as fh:
            raw = fh.pread(0, fh.size)
        header = unpack_header(raw[:HEADER_SIZE])
        fs.create_file(
            path,
            raw[:HEADER_SIZE]
            + b"\x00" * (header.dir_offset - HEADER_SIZE)
            + raw[header.dir_offset:],
        )

    def test_manifest_records_replica_stores(self, sharded):
        fs, _, result = sharded
        for shard in result.manifest.shards:
            expected = [replica_store_name(self.NAME, shard.shard_id, 0)]
            assert shard.replica_stores == expected
            assert fs.exists(f"stores/{expected[0]}/manifest.json")

    @pytest.mark.parametrize("nprocs", (1, 2, 4))
    def test_poisoned_primary_fails_over_to_replica(self, sharded, nprocs):
        fs, geoms, result = sharded
        victim = next(s for s in result.manifest.shards if s.num_pages > 0)
        self._poison_store(fs, victim.store)

        hits, metrics = self._serve(fs, nprocs=nprocs)
        assert sorted(h.record_id for h in hits) == list(range(len(geoms)))
        assert metrics["counters"]["server.failovers"] >= 1

    def test_failover_results_match_fault_free(self, sharded):
        fs, geoms, result = sharded
        clean, _ = self._serve(fs)
        for shard in result.manifest.shards:
            if shard.num_pages > 0:
                self._poison_store(fs, shard.store)
        degraded, metrics = self._serve(fs)
        assert [(h.record_id, h.geometry.wkt()) for h in degraded] == [
            (h.record_id, h.geometry.wkt()) for h in clean
        ]
        assert metrics["counters"]["server.failovers"] >= sum(
            1 for s in result.manifest.shards if s.num_pages > 0
        )

    def test_dead_shard_partial_ok_reports_missing_partitions(self, sharded):
        fs, geoms, result = sharded
        victim = next(s for s in result.manifest.shards if s.num_pages > 0)
        self._poison_store(fs, victim.store)
        for replica in victim.replica_stores:
            self._poison_store(fs, replica)

        res, metrics = self._serve(
            fs, nprocs=4, allow_degraded=True, partial_ok=True
        )
        assert isinstance(res, QueryResult)
        assert not res.complete
        assert res.missing_shards == [victim.shard_id]
        assert res.missing_partitions == sorted(victim.partition_ids)
        assert res.degraded_queries == [0]
        assert res.failures and f"shard {victim.shard_id}" in res.failures[0]
        assert metrics["counters"]["server.degraded_queries"] == 1
        # every record outside the dead shard's partitions is still served
        got = {h.record_id for h in res}
        missing = set(range(len(geoms))) - got
        assert missing  # something was genuinely lost
        for h in res:
            assert h.shard_id != victim.shard_id

    def test_dead_shard_without_partial_ok_raises(self, sharded):
        fs, _, result = sharded
        victim = next(s for s in result.manifest.shards if s.num_pages > 0)
        self._poison_store(fs, victim.store)
        for replica in victim.replica_stores:
            self._poison_store(fs, replica)

        with pytest.raises(StoreError, match=rf"shard {victim.shard_id}"):
            self._serve(fs, nprocs=4, allow_degraded=True, partial_ok=False)

    def test_complete_result_under_partial_ok_is_flagged_complete(self, sharded):
        fs, geoms, _ = sharded
        res, _ = self._serve(fs, nprocs=4, partial_ok=True)
        assert isinstance(res, QueryResult)
        assert res.complete
        assert res.missing_shards == []
        assert res.missing_partitions == []
        assert sorted(h.record_id for h in res) == list(range(len(geoms)))

    def test_zero_deadline_yields_incomplete_but_no_failover(self, sharded):
        fs, _, _ = sharded
        res, metrics = self._serve(fs, nprocs=2, partial_ok=True, deadline=0.0)
        assert not res.complete
        assert res.degraded_queries == [0]
        assert res.missing_shards == []  # truncation, not shard death
        assert metrics["counters"]["server.failovers"] == 0
