"""WKB codec round-trip tests (property-based).

The store's page format depends on `repro.geometry.wkb` being lossless, so
these tests hammer the codec with multi-geometries, collinear rings and
extreme coordinates.  Doubles survive `struct` packing bit-for-bit, so every
round trip must reproduce the coordinates *exactly*.
"""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    GeometryCollection,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
    wkb,
)

# extreme but finite doubles: full float64 range plus subnormals
coord_value = st.one_of(
    st.floats(min_value=-1e308, max_value=1e308, allow_nan=False),
    st.sampled_from([0.0, -0.0, 5e-324, -5e-324, 1.7976931348623157e308, -1.7976931348623157e308]),
)
coordinate = st.tuples(coord_value, coord_value)

points = st.builds(Point, coord_value, coord_value)
linestrings = st.builds(LineString, st.lists(coordinate, min_size=2, max_size=8))


@st.composite
def rings(draw):
    """Closed rings, sometimes with deliberately collinear runs of vertices."""
    x = draw(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    y = draw(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    w = draw(st.floats(min_value=1e-3, max_value=1e3, allow_nan=False))
    h = draw(st.floats(min_value=1e-3, max_value=1e3, allow_nan=False))
    if draw(st.booleans()):
        # rectangle with collinear midpoints on every edge
        return [
            (x, y), (x + w / 2, y), (x + w, y),
            (x + w, y + h / 2), (x + w, y + h),
            (x + w / 2, y + h), (x, y + h), (x, y + h / 2), (x, y),
        ]
    return [(x, y), (x + w, y), (x + w, y + h), (x, y + h), (x, y)]


polygons = st.builds(Polygon, rings())
multipoints = st.builds(MultiPoint, st.lists(points, max_size=5))
multilinestrings = st.builds(MultiLineString, st.lists(linestrings, max_size=4))
multipolygons = st.builds(MultiPolygon, st.lists(polygons, max_size=3))
collections = st.builds(
    GeometryCollection,
    st.lists(st.one_of(points, linestrings, polygons, multipoints), max_size=4),
)
any_geometry = st.one_of(
    points, linestrings, polygons, multipoints, multilinestrings, multipolygons, collections
)


def assert_identical(a, b):
    """Structural equality with exact coordinate comparison."""
    assert a.geom_type == b.geom_type
    if isinstance(a, Point):
        assert (a.x, a.y) == (b.x, b.y)
    elif isinstance(a, LineString):
        assert list(a.coords) == list(b.coords)
    elif isinstance(a, Polygon):
        a_rings = [list(r.coords) for r in a.rings()]
        b_rings = [list(r.coords) for r in b.rings()]
        assert a_rings == b_rings
    else:  # multi / collection
        assert len(a) == len(b)
        for ga, gb in zip(a, b):
            assert_identical(ga, gb)


class TestWKBPropertyRoundTrip:
    @given(any_geometry)
    @settings(max_examples=150, deadline=None)
    def test_round_trip_exact(self, geom):
        assert_identical(geom, wkb.loads(wkb.dumps(geom)))

    @given(any_geometry)
    @settings(max_examples=50, deadline=None)
    def test_dumps_is_deterministic(self, geom):
        encoded = wkb.dumps(geom)
        assert encoded == wkb.dumps(wkb.loads(encoded))


class TestWKBEdgeCases:
    def test_collinear_ring(self):
        poly = Polygon([(0, 0), (2, 0), (4, 0), (4, 4), (2, 4), (0, 4), (0, 0)])
        assert_identical(poly, wkb.loads(wkb.dumps(poly)))

    def test_polygon_with_hole(self):
        poly = Polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10), (0, 0)],
            [[(2, 2), (4, 2), (4, 4), (2, 4), (2, 2)]],
        )
        assert_identical(poly, wkb.loads(wkb.dumps(poly)))

    def test_extreme_coordinates_bit_exact(self):
        values = [1.7976931348623157e308, 5e-324, -0.0, 0.1 + 0.2, -1e300]
        for v in values:
            point = wkb.loads(wkb.dumps(Point(v, -v)))
            # bit-for-bit, not merely ==: -0.0 must stay -0.0
            assert struct.pack("<d", point.x) == struct.pack("<d", v)
            assert struct.pack("<d", point.y) == struct.pack("<d", -v)

    def test_empty_multis(self):
        for geom in (MultiPoint([]), MultiLineString([]), MultiPolygon([]), GeometryCollection([])):
            back = wkb.loads(wkb.dumps(geom))
            assert back.geom_type == geom.geom_type
            assert len(back) == 0

    def test_nested_collection(self):
        inner = GeometryCollection([Point(1, 2), MultiPoint([Point(3, 4)])])
        outer = GeometryCollection([inner, LineString([(0, 0), (1e308, -1e308)])])
        assert_identical(outer, wkb.loads(wkb.dumps(outer)))

    def test_truncated_raises(self):
        data = wkb.dumps(Polygon([(0, 0), (1, 0), (1, 1), (0, 0)]))
        with pytest.raises(wkb.WKBParseError):
            wkb.loads(data[:-4])

    def test_unknown_type_code_raises(self):
        bad = struct.pack("<bI", 1, 99) + struct.pack("<dd", 0, 0)
        with pytest.raises(wkb.WKBParseError):
            wkb.loads(bad)
