"""Checked-in finding baseline for the SPMD linter.

The gate fails only on *new* findings: every known finding is recorded by a
stable fingerprint (rule + file + enclosing scope + a hash of the flagged
line, disambiguated by occurrence index) so unrelated line drift neither
breaks the build nor silently retires entries.  Stale entries — fingerprints
in the baseline that no current finding matches — are reported as cleanup
candidates but do not fail the gate.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from .spmd import Finding

__all__ = ["Baseline", "load_baseline", "write_baseline", "fingerprints"]

_FORMAT_VERSION = 1


def fingerprints(findings: Sequence[Finding]) -> List[str]:
    """Fingerprints for *findings*, numbering repeats of the same
    (rule, path, context, snippet) tuple by occurrence so two identical
    violations on different lines stay distinct."""
    seen: Counter = Counter()
    out: List[str] = []
    for finding in findings:
        base = finding.fingerprint(0).rsplit(":", 1)[0]
        out.append(f"{base}:{seen[base]}")
        seen[base] += 1
    return out


@dataclass
class Baseline:
    """The accepted-findings set plus bookkeeping for diffs against it."""

    entries: Dict[str, str] = field(default_factory=dict)  # fingerprint -> note

    def diff(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Tuple[Finding, str]], List[str]]:
        """Split *findings* into (new_findings_with_fingerprint, stale
        baseline fingerprints no current finding matches)."""
        prints = fingerprints(findings)
        new = [
            (finding, fp)
            for finding, fp in zip(findings, prints)
            if fp not in self.entries
        ]
        current = set(prints)
        stale = sorted(fp for fp in self.entries if fp not in current)
        return new, stale

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        entries = {
            fp: f"{finding.path}:{finding.line} {finding.message}"
            for finding, fp in zip(findings, fingerprints(findings))
        }
        return cls(entries=entries)


def load_baseline(path: Union[str, Path]) -> Baseline:
    """Load a baseline file; a missing file is an empty baseline, so the
    first run of the gate reports everything as new."""
    path = Path(path)
    if not path.exists():
        return Baseline()
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported baseline version {payload.get('version')!r} in {path}"
        )
    return Baseline(entries=dict(payload.get("findings", {})))


def write_baseline(baseline: Baseline, path: Union[str, Path]) -> None:
    path = Path(path)
    payload = {
        "version": _FORMAT_VERSION,
        "tool": "repro.analysis.spmd",
        "findings": dict(sorted(baseline.entries.items())),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
