"""Async multiplexing front-end — concurrency sweep and cost-model prefetch.

Not a figure of the paper: this benchmark extends the `repro.store` perf
trajectory to PR 4's staged engine and async front-end.

* **Concurrency sweep** — the same query batches served through one
  `DistributedStoreServer` at 1, 4 and 16 in-flight batches
  (`AsyncStoreFrontend`) against strict sequential submission.  Expected
  shape: identical per-batch hits everywhere, and phase-overlapped
  virtual-clock throughput rising with the window — the windowed pipeline
  must beat sequential submission at ≥ 4 in-flight batches.
* **Cost-model vs fixed prefetch** — the same window sweep served by one
  store under the fixed heuristics (page-size gap, constant readahead)
  and under `io_policy="cost_model"` (break-even gap + stripe-aligned
  readahead from the `repro.pfs` layout).  Expected shape: identical hits
  with no more coalesced read requests.

Set ``ASYNC_FRONTEND_QUICK=1`` for the CI smoke variant (fewer batches,
fewer ranks).
"""

import os

import pytest

from repro import mpisim
from repro.bench.reporting import FigureReport
from repro.core import VectorIO
from repro.datasets import random_envelopes
from repro.store import (
    AsyncStoreFrontend,
    DistributedStoreServer,
    SpatialDataStore,
    bulk_load,
    sharded_bulk_load,
)

QUICK = bool(os.environ.get("ASYNC_FRONTEND_QUICK"))
NPROCS = 2 if QUICK else 4
NUM_BATCHES = 8 if QUICK else 16
PER_BATCH = 4 if QUICK else 8
WINDOWS = (1, 4) if QUICK else (1, 4, 16)


@pytest.fixture(scope="module")
def frontend_store(lustre, join_datasets):
    geometries = VectorIO(lustre).sequential_read(
        join_datasets["lakes_uniform"]
    ).geometries
    sharded = sharded_bulk_load(lustre, "bench_async_lakes", geometries,
                                num_shards=NPROCS, num_partitions=16,
                                page_size=4096)
    bulk_load(lustre, "bench_async_single", geometries, num_partitions=16,
              page_size=4096)
    envs = list(
        random_envelopes(NUM_BATCHES * PER_BATCH, extent=sharded.manifest.extent,
                         max_size_fraction=0.1, seed=71)
    )
    batches = [
        [(f"b{b}.q{i}", env)
         for i, env in enumerate(envs[b * PER_BATCH:(b + 1) * PER_BATCH])]
        for b in range(NUM_BATCHES)
    ]
    return {"batches": batches, "extent": sharded.manifest.extent}


def _serve(lustre, batches, mode, window=1):
    """One cold-cache serving run; returns rank 0's FrontendResult."""

    def prog(comm):
        with DistributedStoreServer.open(
            comm, lustre, "bench_async_lakes", cache_pages=128
        ) as server:
            frontend = AsyncStoreFrontend(server, max_in_flight=window)
            root = batches if comm.rank == 0 else None
            if mode == "sequential":
                return frontend.serve_sequential(root)
            return frontend.serve(root)

    return mpisim.run_spmd(prog, NPROCS).values[0]


def test_async_frontend_concurrency_sweep(lustre, frontend_store, benchmark, once):
    batches = frontend_store["batches"]

    def driver():
        report = FigureReport(
            "AsyncServe", "Concurrent query batches over one sharded server",
            "in_flight", "value",
        )
        qps = report.add_series("queries_per_second")
        lat = report.add_series("mean_latency_ms")

        sequential = _serve(lustre, batches, "sequential")
        qps.add("sequential", sequential.queries_per_second)
        lat.add("sequential", sequential.mean_latency * 1e3)

        sweep = {}
        for window in WINDOWS:
            result = _serve(lustre, batches, "async", window=window)
            sweep[window] = result
            qps.add(str(window), result.queries_per_second)
            lat.add(str(window), result.mean_latency * 1e3)

        report.note(
            f"{len(batches)} batches x {PER_BATCH} queries on {NPROCS} ranks; "
            f"sequential {sequential.queries_per_second:.0f} q/s vs "
            + ", ".join(
                f"W={w}: {r.queries_per_second:.0f} q/s" for w, r in sweep.items()
            )
        )

        # noise-robust acceptance numbers: sequential and W=4 re-measured in
        # interleaved rounds, best of each side — the virtual makespan
        # includes compute charges measured from real CPU time, so a single
        # paired measurement is at the mercy of ambient machine load
        seq_best = (sequential.queries_per_second, sequential.makespan)
        w4_best = (sweep[4].queries_per_second, sweep[4].makespan)
        for _ in range(1 if QUICK else 2):
            s = _serve(lustre, batches, "sequential")
            a = _serve(lustre, batches, "async", window=4)
            seq_best = (max(seq_best[0], s.queries_per_second),
                        min(seq_best[1], s.makespan))
            w4_best = (max(w4_best[0], a.queries_per_second),
                       min(w4_best[1], a.makespan))
        return report, sequential, sweep, seq_best, w4_best

    report, sequential, sweep, seq_best, w4_best = once(driver)
    report.print()

    # equal results first: the pipeline is an optimization, not a rewrite
    seq_keys = [
        [(h.query_id, h.record_id) for h in hits] for hits in sequential.batches
    ]
    for result in sweep.values():
        assert [
            [(h.query_id, h.record_id) for h in hits] for hits in result.batches
        ] == seq_keys

    # the acceptance bar: ≥ 4 concurrent batches with phase-overlapped
    # virtual-clock throughput exceeding sequential submission.  The smoke
    # variant (2 ranks, small batches) has almost no overlap to exploit —
    # rank 0 both routes and serves — so it only checks W=4 stays within
    # noise of sequential; the full sweep enforces the strict win.
    if QUICK:
        assert w4_best[0] > seq_best[0] * 0.9
        assert w4_best[1] < seq_best[1] * 1.1
    else:
        assert w4_best[0] > seq_best[0]
        assert w4_best[1] < seq_best[1]

    benchmark.extra_info["num_batches"] = len(batches)
    benchmark.extra_info["queries_per_batch"] = PER_BATCH
    benchmark.extra_info["nprocs"] = NPROCS
    benchmark.extra_info["sequential"] = sequential.summary()
    for window, result in sweep.items():
        benchmark.extra_info[f"in_flight_{window}"] = result.summary()
        benchmark.extra_info[f"speedup_{window}"] = (
            result.queries_per_second / sequential.queries_per_second
            if sequential.queries_per_second else float("inf")
        )


def test_cost_model_vs_fixed_prefetch(lustre, frontend_store, benchmark, once):
    extent = frontend_store["extent"]
    queries = [
        (i, env)
        for i, env in enumerate(
            random_envelopes(24 if QUICK else 60, extent=extent,
                             max_size_fraction=0.08, seed=93)
        )
    ]

    def serve(**open_kwargs):
        store = SpatialDataStore.open(lustre, "bench_async_single",
                                      cache_pages=256, **open_kwargs)
        hits = store.range_query_batch(queries, exact=False)
        stats = store.stats.as_dict()
        store.close()
        keys = [[h.record_id for h in per] for per in hits]
        return keys, stats

    def driver():
        report = FigureReport(
            "CostModelPrefetch", "Fixed heuristics vs cost-model I/O scheduling",
            "policy", "value",
        )
        reqs = report.add_series("read_requests")
        pre = report.add_series("pages_prefetched")
        io = report.add_series("io_milliseconds")

        fixed_keys, fixed = serve()
        fixed4_keys, fixed4 = serve(prefetch_pages=4)
        cost_keys, cost = serve(io_policy="cost_model")
        for label, stats in (("fixed", fixed), ("fixed_prefetch4", fixed4),
                             ("cost_model", cost)):
            reqs.add(label, stats["read_requests"])
            pre.add(label, stats["pages_prefetched"])
            io.add(label, stats["io_seconds"] * 1e3)

        report.note(
            f"{len(queries)} windows; read_requests fixed={fixed['read_requests']:.0f} "
            f"fixed+4={fixed4['read_requests']:.0f} cost={cost['read_requests']:.0f}; "
            f"prefetched cost={cost['pages_prefetched']:.0f}"
        )
        return report, (fixed_keys, fixed4_keys, cost_keys), (fixed, fixed4, cost)

    report, (fixed_keys, fixed4_keys, cost_keys), (fixed, fixed4, cost) = once(driver)
    report.print()

    # identical answers under every policy
    assert cost_keys == fixed_keys == fixed4_keys

    # the break-even gap merges at least as aggressively as the page-size gap
    assert cost["read_requests"] <= fixed["read_requests"]

    benchmark.extra_info["queries"] = len(queries)
    for label, stats in (("fixed", fixed), ("fixed_prefetch4", fixed4),
                         ("cost_model", cost)):
        benchmark.extra_info[label] = {
            "read_requests": float(stats["read_requests"]),
            "pages_prefetched": float(stats["pages_prefetched"]),
            "pages_read": float(stats["pages_read"]),
            "io_seconds": float(stats["io_seconds"]),
        }
