"""Deterministic fault injection for the simulated serving stack.

The fault-tolerance layer (page checksums, retry/backoff, replica failover,
degraded-mode results) is only as trustworthy as the failures it was tested
against.  This module is that test double: a :class:`FaultyFilesystem`
wrapper over any :class:`~repro.pfs.filesystem.SimulatedFilesystem` that
injects *seeded, reproducible* faults into the read path —

* **transient read errors** — ``pread`` raises :class:`TransientIOError`;
* **torn / short reads** — ``pread`` returns fewer bytes than asked for;
* **bit-flips** — ``pread`` returns the right length with one bit flipped
  (the silent-corruption case only checksums can catch);
* **latency spikes** — ``read_time`` reports extra virtual seconds.

Faults are configured as an ordered list of :class:`FaultRule` objects,
matched per path (``fnmatch`` pattern) and per simulated MPI rank.  The
calling rank is derived from the ``mpisim-rank-N`` thread name the SPMD
runtime assigns, so one shared wrapper serves a whole simulated cluster
while each rank draws from its own seeded RNG stream — rank-deterministic
regardless of thread interleaving.

A comm-level companion, :class:`RankFaultInjector`, plugs into
:meth:`~repro.mpisim.comm.Communicator.attach_fault_hook` and kills a
configured rank after a configured number of communication calls.
"""

from __future__ import annotations

import fnmatch
import random
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .mpisim.errors import RankFaultError
from .pfs.filesystem import FileHandle, SimulatedFilesystem

__all__ = [
    "TransientIOError",
    "FaultRule",
    "FaultStats",
    "FaultyFileHandle",
    "FaultyFilesystem",
    "RankFaultInjector",
    "current_sim_rank",
]

#: thread-name prefix the SPMD runtime gives every simulated rank
_RANK_THREAD_PREFIX = "mpisim-rank-"


class TransientIOError(IOError):
    """An injected transient read failure (the kind a retry should absorb)."""


def current_sim_rank() -> int:
    """Rank of the calling simulated-MPI thread (0 outside the runtime)."""
    name = threading.current_thread().name
    if name.startswith(_RANK_THREAD_PREFIX):
        try:
            return int(name[len(_RANK_THREAD_PREFIX):])
        except ValueError:
            return 0
    return 0


@dataclass
class FaultRule:
    """One injection rule: which reads it applies to and what goes wrong.

    Rates are independent per-``pread`` probabilities drawn from the calling
    rank's seeded stream; the first matching rule wins, so put specific
    patterns before catch-alls.  ``max_faults`` caps the total number of
    faults this rule injects (across all ranks), which is how "transient"
    faults are made finite and how a single poisoned read is staged.
    """

    #: fnmatch pattern against the simulated path (e.g. ``"stores/a/*.bin"``)
    path_pattern: str = "*"
    #: ranks the rule applies to (``None`` = every rank)
    ranks: Optional[Sequence[int]] = None
    #: probability a pread raises :class:`TransientIOError`
    read_error_rate: float = 0.0
    #: probability a pread returns a truncated buffer
    short_read_rate: float = 0.0
    #: probability a pread has one random bit flipped in its buffer
    bitflip_rate: float = 0.0
    #: probability ``read_time`` reports an added latency spike
    latency_spike_rate: float = 0.0
    #: virtual seconds one latency spike adds
    latency_spike_seconds: float = 0.05
    #: total faults this rule may inject (``None`` = unbounded)
    max_faults: Optional[int] = None
    #: faults injected so far (mutated by the filesystem wrapper)
    injected: int = 0

    def applies_to(self, path: str, rank: int) -> bool:
        if self.ranks is not None and rank not in self.ranks:
            return False
        return fnmatch.fnmatch(path, self.path_pattern)

    def exhausted(self) -> bool:
        return self.max_faults is not None and self.injected >= self.max_faults


@dataclass
class FaultStats:
    """Counts of every fault actually injected (for test assertions)."""

    preads: int = 0
    read_errors: int = 0
    short_reads: int = 0
    bitflips: int = 0
    latency_spikes: int = 0
    #: injected virtual seconds of latency
    spike_seconds: float = 0.0
    #: (path, offset) of each bit-flipped read, for targeted assertions
    bitflip_sites: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def total_faults(self) -> int:
        return self.read_errors + self.short_reads + self.bitflips


class FaultyFileHandle:
    """A :class:`~repro.pfs.filesystem.FileHandle` proxy whose ``pread``
    passes through the owning :class:`FaultyFilesystem`'s injection filter.

    Writes are never tampered with: the faults modelled here are read-side
    (media errors, torn network reads), and tests rely on the backing bytes
    staying authoritative so a retry can genuinely succeed.
    """

    def __init__(self, inner: FileHandle, owner: "FaultyFilesystem", path: str) -> None:
        self._inner = inner
        self._owner = owner
        self.path = path
        self.mode = inner.mode

    @property
    def layout(self):
        return self._inner.layout

    @property
    def size(self) -> int:
        return self._inner.size

    def pread(self, offset: int, nbytes: int) -> bytes:
        data = self._inner.pread(offset, nbytes)
        return self._owner._filter_pread(self.path, offset, data)

    def pwrite(self, offset: int, data: bytes) -> int:
        return self._inner.pwrite(offset, data)

    def close(self) -> None:
        self._inner.close()

    def __enter__(self) -> "FaultyFileHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class FaultyFilesystem:
    """Wrap a simulated filesystem so its read path misbehaves on demand.

    Pure delegation for everything except ``open`` (which returns a
    :class:`FaultyFileHandle`) and ``read_time`` (which may add latency
    spikes), so the wrapper is drop-in anywhere a
    :class:`~repro.pfs.filesystem.SimulatedFilesystem` is accepted.  Set
    ``armed = False`` (or use :meth:`disarm`) to pass reads through
    untouched — e.g. while bulk-loading the fixture data the faults will
    later corrupt in flight.
    """

    def __init__(
        self,
        inner: SimulatedFilesystem,
        rules: Optional[Sequence[FaultRule]] = None,
        seed: int = 0,
    ) -> None:
        self.inner = inner
        self.rules: List[FaultRule] = list(rules or [])
        self.seed = seed
        self.armed = True
        self.stats = FaultStats()
        self._rngs: Dict[int, random.Random] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # configuration
    # ------------------------------------------------------------------ #
    def add_rule(self, rule: FaultRule) -> FaultRule:
        self.rules.append(rule)
        return rule

    def arm(self) -> None:
        self.armed = True

    def disarm(self) -> None:
        self.armed = False

    def reset(self, seed: Optional[int] = None) -> None:
        """Forget RNG state and stats so a rerun replays identically."""
        if seed is not None:
            self.seed = seed
        self._rngs.clear()
        self.stats = FaultStats()
        for rule in self.rules:
            rule.injected = 0

    def _rng(self, rank: int) -> random.Random:
        rng = self._rngs.get(rank)
        if rng is None:
            rng = self._rngs[rank] = random.Random(f"faults:{self.seed}:{rank}")
        return rng

    # ------------------------------------------------------------------ #
    # injection core
    # ------------------------------------------------------------------ #
    def _match(self, path: str, rank: int) -> Optional[FaultRule]:
        for rule in self.rules:
            if not rule.exhausted() and rule.applies_to(path, rank):
                return rule
        return None

    def _filter_pread(self, path: str, offset: int, data: bytes) -> bytes:
        if not self.armed:
            return data
        rank = current_sim_rank()
        with self._lock:
            self.stats.preads += 1
            rule = self._match(path, rank)
            if rule is None:
                return data
            rng = self._rng(rank)
            # one draw per fault type keeps each rank's stream aligned with
            # its own pread sequence, independent of other ranks
            draws = (rng.random(), rng.random(), rng.random())
            if draws[0] < rule.read_error_rate:
                rule.injected += 1
                self.stats.read_errors += 1
                raise TransientIOError(
                    f"injected transient read error: {path!r} @ {offset}"
                )
            if data and draws[1] < rule.short_read_rate:
                rule.injected += 1
                self.stats.short_reads += 1
                return data[: rng.randrange(len(data))]
            if data and draws[2] < rule.bitflip_rate:
                rule.injected += 1
                self.stats.bitflips += 1
                self.stats.bitflip_sites.append((path, offset))
                pos = rng.randrange(len(data))
                flipped = bytearray(data)
                flipped[pos] ^= 1 << rng.randrange(8)
                return bytes(flipped)
        return data

    # ------------------------------------------------------------------ #
    # overridden surface
    # ------------------------------------------------------------------ #
    def open(self, path: str, mode: str = "r"):
        return FaultyFileHandle(self.inner.open(path, mode), self, path)

    def read_time(self, path, requests, readers=None) -> float:
        base = self.inner.read_time(path, requests, readers)
        if not self.armed:
            return base
        rank = current_sim_rank()
        with self._lock:
            rule = self._match(path, rank)
            if rule is None or rule.latency_spike_rate <= 0.0:
                return base
            if self._rng(rank).random() < rule.latency_spike_rate:
                self.stats.latency_spikes += 1
                self.stats.spike_seconds += rule.latency_spike_seconds
                return base + rule.latency_spike_seconds
        return base

    # ------------------------------------------------------------------ #
    # pure delegation
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        return self.inner.name

    @property
    def root(self):
        return self.inner.root

    @property
    def cost_model(self):
        return self.inner.cost_model

    @property
    def default_layout(self):
        return self.inner.default_layout

    def backing_path(self, path: str):
        return self.inner.backing_path(path)

    def exists(self, path: str) -> bool:
        return self.inner.exists(path)

    def file_size(self, path: str) -> int:
        return self.inner.file_size(path)

    def set_layout(self, path: str, layout) -> None:
        self.inner.set_layout(path, layout)

    def layout_of(self, path: str):
        return self.inner.layout_of(path)

    def create_file(self, path: str, data=None, layout=None) -> None:
        self.inner.create_file(path, data, layout)

    def remove(self, path: str) -> None:
        self.inner.remove(path)

    def create_file_from_local(self, path: str, local, layout=None) -> None:
        self.inner.create_file_from_local(path, local, layout)

    def open_time(self) -> float:
        return self.inner.open_time()

    def write_time(self, path, requests, writers=None) -> float:
        return self.inner.write_time(path, requests, writers)

    def describe(self) -> str:
        return f"faulty({self.inner.describe()}, rules={len(self.rules)})"


class RankFaultInjector:
    """Comm-level companion: kill one rank after *after_calls* operations.

    Attach per rank via ``comm.attach_fault_hook(injector)``; the injector
    counts that rank's communication calls and raises
    :class:`~repro.mpisim.errors.RankFaultError` once the threshold passes,
    which the SPMD runtime then propagates to every peer as an
    ``MPIAbortError`` — the simulated equivalent of a node dropping out
    mid-collective.
    """

    def __init__(self, fail_rank: int, after_calls: int = 0, op: Optional[str] = None) -> None:
        self.fail_rank = fail_rank
        self.after_calls = after_calls
        self.op = op
        self.calls: Dict[int, int] = {}

    def __call__(self, op: str, rank: int) -> None:
        count = self.calls.get(rank, 0) + 1
        self.calls[rank] = count
        if rank != self.fail_rank:
            return
        if self.op is not None and op != self.op:
            return
        if count > self.after_calls:
            raise RankFaultError(
                f"injected rank fault: rank {rank} failed in {op} "
                f"(call {count})"
            )
