"""Simulated parallel filesystem base classes.

A :class:`SimulatedFilesystem` pairs a directory of ordinary local files (the
*backing store*, so reads return real bytes and parsing is genuine) with a
striping description and an :class:`~repro.pfs.costmodel.IOCostModel` that the
MPI-IO layer uses to charge virtual time.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from .costmodel import IOCostModel, ReadRequest
from .striping import StripeLayout

__all__ = ["FileHandle", "SimulatedFilesystem"]


@dataclass
class _FileMeta:
    layout: StripeLayout
    size: int


class FileHandle:
    """A handle onto one simulated file (read/write real bytes + metadata)."""

    def __init__(self, fs: "SimulatedFilesystem", path: str, mode: str = "r") -> None:
        self.fs = fs
        self.path = path
        self.mode = mode
        backing = fs.backing_path(path)
        if "w" in mode:
            backing.parent.mkdir(parents=True, exist_ok=True)
            if not backing.exists():
                backing.write_bytes(b"")
        if not backing.exists():
            raise FileNotFoundError(f"simulated file {path!r} does not exist")
        flags = os.O_RDWR if ("w" in mode or "+" in mode) else os.O_RDONLY
        self._fd = os.open(backing, flags)
        self._closed = False

    # ------------------------------------------------------------------ #
    @property
    def layout(self) -> StripeLayout:
        return self.fs.layout_of(self.path)

    @property
    def size(self) -> int:
        return os.fstat(self._fd).st_size

    def pread(self, offset: int, nbytes: int) -> bytes:
        """Read real bytes (clamped at end of file, like POSIX pread)."""
        if nbytes <= 0:
            return b""
        return os.pread(self._fd, nbytes, offset)

    def pwrite(self, offset: int, data: bytes) -> int:
        if "w" not in self.mode and "+" not in self.mode:
            raise PermissionError(f"file {self.path!r} opened read-only")
        return os.pwrite(self._fd, data, offset)

    def close(self) -> None:
        if not self._closed:
            os.close(self._fd)
            self._closed = True

    def __enter__(self) -> "FileHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - best effort cleanup
        try:
            self.close()
        except Exception:
            pass


class SimulatedFilesystem:
    """Base class: a named filesystem with a backing directory, default
    striping and a cost model."""

    name = "pfs"

    def __init__(
        self,
        root: Union[str, Path],
        cost_model: Optional[IOCostModel] = None,
        default_layout: Optional[StripeLayout] = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.cost_model = cost_model or IOCostModel()
        self.default_layout = default_layout or StripeLayout(stripe_size=1 << 20, stripe_count=1)
        self._layouts: Dict[str, StripeLayout] = {}

    # ------------------------------------------------------------------ #
    # namespace management
    # ------------------------------------------------------------------ #
    def backing_path(self, path: str) -> Path:
        rel = path.lstrip("/")
        return self.root / rel

    def exists(self, path: str) -> bool:
        return self.backing_path(path).exists()

    def file_size(self, path: str) -> int:
        return self.backing_path(path).stat().st_size

    def set_layout(self, path: str, layout: StripeLayout) -> None:
        """Equivalent of ``lfs setstripe`` — must be called before writing for
        real Lustre; the simulation is forgiving and just records it."""
        self._layouts[path.lstrip("/")] = layout

    def layout_of(self, path: str) -> StripeLayout:
        return self._layouts.get(path.lstrip("/"), self.default_layout)

    # ------------------------------------------------------------------ #
    # file creation / access
    # ------------------------------------------------------------------ #
    def create_file(
        self,
        path: str,
        data: Optional[bytes] = None,
        layout: Optional[StripeLayout] = None,
    ) -> None:
        """Create (or overwrite) a file with *data* and an optional layout."""
        backing = self.backing_path(path)
        backing.parent.mkdir(parents=True, exist_ok=True)
        backing.write_bytes(data or b"")
        if layout is not None:
            self.set_layout(path, layout)

    def remove(self, path: str) -> None:
        """Delete a file (idempotent: a missing path is not an error).

        Store compaction uses this to drop merged delta containers; the
        recorded striping layout is forgotten with the file.
        """
        backing = self.backing_path(path)
        if backing.exists() or backing.is_symlink():
            backing.unlink()
        self._layouts.pop(path.lstrip("/"), None)

    def create_file_from_local(self, path: str, local: Union[str, Path], layout: Optional[StripeLayout] = None) -> None:
        """Register an existing local file under *path* (no copy; a symlink is
        created inside the filesystem root)."""
        backing = self.backing_path(path)
        backing.parent.mkdir(parents=True, exist_ok=True)
        local = Path(local).resolve()
        if backing.exists() or backing.is_symlink():
            backing.unlink()
        backing.symlink_to(local)
        if layout is not None:
            self.set_layout(path, layout)

    def open(self, path: str, mode: str = "r") -> FileHandle:
        return FileHandle(self, path, mode)

    # ------------------------------------------------------------------ #
    # timing hooks (overridden by concrete filesystems)
    # ------------------------------------------------------------------ #
    def open_time(self) -> float:
        return self.cost_model.open_latency

    def read_time(
        self,
        path: str,
        requests: List[ReadRequest],
        readers: Optional[List[int]] = None,
    ) -> float:
        """Simulated makespan of a set of concurrent reads against *path*."""
        return self.cost_model.parallel_read_time(self.layout_of(path), requests, readers)

    def write_time(
        self,
        path: str,
        requests: List[ReadRequest],
        writers: Optional[List[int]] = None,
    ) -> float:
        """Writes use the same contention model as reads (the paper only
        benchmarks reads; writes exist for the output path of overlay-style
        applications)."""
        return self.cost_model.parallel_read_time(self.layout_of(path), requests, writers)

    def describe(self) -> str:
        return f"{self.name}(root={self.root})"
